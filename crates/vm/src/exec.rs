//! Cycle-accurate execution of assembled routines.

use crate::inst::{Inst, VmProgram};
use crate::profile::ObjectCode;
use polis_expr::{BinOp, UnOp};
use std::error::Error;
use std::fmt;

/// Host interface for RTOS interactions during a reaction.
pub trait ReactionHost {
    /// Presence flag of the input event (the RTOS event-detection call).
    fn detect(&mut self, input: usize) -> bool;
    /// Pure event emission.
    fn emit_pure(&mut self, output: usize);
    /// Valued event emission (value already coerced to the signal type).
    fn emit_valued(&mut self, output: usize, value: i64);
    /// A transition fired: the input snapshot must be consumed.
    fn consume(&mut self);
}

/// A [`ReactionHost`] that records everything, for tests and simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectingHost {
    /// Presence flags indexed by CFSM input index.
    pub present: Vec<bool>,
    /// Emissions in order: `(output index, value)`.
    pub emissions: Vec<(usize, Option<i64>)>,
    /// Whether the reaction consumed its inputs.
    pub consumed: bool,
}

impl CollectingHost {
    /// A host with the given presence flags.
    pub fn new(present: Vec<bool>) -> CollectingHost {
        CollectingHost {
            present,
            emissions: Vec::new(),
            consumed: false,
        }
    }
}

impl ReactionHost for CollectingHost {
    fn detect(&mut self, input: usize) -> bool {
        self.present.get(input).copied().unwrap_or(false)
    }
    fn emit_pure(&mut self, output: usize) {
        self.emissions.push((output, None));
    }
    fn emit_valued(&mut self, output: usize, value: i64) {
        self.emissions.push((output, Some(value)));
    }
    fn consume(&mut self) {
        self.consumed = true;
    }
}

/// The routine's data memory: one value per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmMemory {
    values: Vec<i64>,
}

impl VmMemory {
    /// Memory initialized to the program's slot reset values.
    pub fn new(prog: &VmProgram) -> VmMemory {
        VmMemory {
            values: prog.slots().iter().map(|s| s.init).collect(),
        }
    }

    /// Reads a slot.
    pub fn get(&self, slot: u16) -> i64 {
        self.values[slot as usize]
    }

    /// Writes a slot (no coercion; used by the RTOS to deliver event
    /// values, which are coerced at the emitter).
    pub fn set(&mut self, slot: u16, value: i64) {
        self.values[slot as usize] = value;
    }
}

/// Execution metrics for one reaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Clock cycles consumed (per the object code's cost profile).
    pub cycles: u64,
    /// Instructions executed.
    pub executed: u64,
}

/// A runtime failure (all indicate compiler bugs, not specification
/// errors — compiled programs are type- and range-checked upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Operand stack underflow.
    StackUnderflow {
        /// Faulting instruction index.
        at: usize,
    },
    /// A jump-table index outside the table.
    BadTableIndex {
        /// Faulting instruction index.
        at: usize,
        /// The popped index.
        index: i64,
    },
    /// The instruction pointer ran past the routine without `Return`.
    MissingReturn,
    /// Executed-instruction budget exhausted (guards against accidental
    /// loops; compiled s-graphs are acyclic).
    StepLimit,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StackUnderflow { at } => write!(f, "stack underflow at instruction {at}"),
            RunError::BadTableIndex { at, index } => {
                write!(
                    f,
                    "jump-table index {index} out of range at instruction {at}"
                )
            }
            RunError::MissingReturn => write!(f, "control ran past the end of the routine"),
            RunError::StepLimit => write!(f, "execution step limit exceeded"),
        }
    }
}

impl Error for RunError {}

const STEP_LIMIT: u64 = 1_000_000;

/// Runs one reaction, charging cycles per the assembled `obj` costs.
///
/// # Errors
///
/// See [`RunError`]; none occur for programs produced by
/// [`crate::compile`] from valid s-graphs.
pub fn run_reaction(
    prog: &VmProgram,
    obj: &ObjectCode,
    mem: &mut VmMemory,
    host: &mut dyn ReactionHost,
) -> Result<RunStats, RunError> {
    let insts = prog.insts();
    let mut stack: Vec<i64> = Vec::with_capacity(16);
    let mut pc = 0usize;
    let mut stats = RunStats::default();

    macro_rules! pop {
        () => {
            stack.pop().ok_or(RunError::StackUnderflow { at: pc })?
        };
    }

    loop {
        if stats.executed >= STEP_LIMIT {
            return Err(RunError::StepLimit);
        }
        let Some(inst) = insts.get(pc) else {
            return Err(RunError::MissingReturn);
        };
        let cost = obj.cost(pc);
        stats.executed += 1;
        stats.cycles += u64::from(cost.cycles);
        let mut next = pc + 1;
        match inst {
            Inst::PushImm(v) => stack.push(*v),
            Inst::PushVar(s) => stack.push(mem.get(*s)),
            Inst::StoreVar(s) => {
                let v = pop!();
                let ty = prog.slots()[*s as usize].ty;
                mem.set(*s, ty.clamp(v));
            }
            Inst::Unary(op) => {
                let a = pop!();
                stack.push(match op {
                    UnOp::Not => i64::from(a == 0),
                    UnOp::Neg => a.wrapping_neg(),
                });
            }
            Inst::Binary(op) => {
                let b = pop!();
                let a = pop!();
                stack.push(bin_apply(*op, a, b));
            }
            Inst::Branch { when, target } => {
                let v = pop!();
                if (v != 0) == *when {
                    stats.cycles += u64::from(cost.taken_extra);
                    next = *target;
                }
            }
            Inst::Jump(target) => next = *target,
            Inst::JumpTable(targets) => {
                let v = pop!();
                let idx = usize::try_from(v).ok().filter(|i| *i < targets.len());
                match idx {
                    Some(i) => next = targets[i],
                    None => return Err(RunError::BadTableIndex { at: pc, index: v }),
                }
            }
            Inst::PushCtrlBit { slot, bit, width } => {
                let v = mem.get(*slot);
                stack.push(v >> (width - 1 - bit) & 1);
            }
            Inst::SetCtrlBits { slot, bits, width } => {
                let mut v = mem.get(*slot);
                for (bit, val) in bits {
                    let mask = 1i64 << (width - 1 - bit);
                    if *val {
                        v |= mask;
                    } else {
                        v &= !mask;
                    }
                }
                mem.set(*slot, v);
            }
            Inst::StoreCtrlBit { slot, bit, width } => {
                let val = pop!();
                let mut v = mem.get(*slot);
                let mask = 1i64 << (width - 1 - bit);
                if val != 0 {
                    v |= mask;
                } else {
                    v &= !mask;
                }
                mem.set(*slot, v);
            }
            Inst::Detect(i) => stack.push(i64::from(host.detect(*i as usize))),
            Inst::EmitPure(o) => host.emit_pure(*o as usize),
            Inst::EmitValued(o) => {
                let v = pop!();
                let v = match prog.output_type(*o as usize) {
                    Some(ty) => ty.clamp(v),
                    None => v,
                };
                host.emit_valued(*o as usize, v);
            }
            Inst::Consume => host.consume(),
            Inst::Return => return Ok(stats),
        }
        pc = next;
    }
}

/// Numeric semantics identical to [`polis_expr`] evaluation (booleans as
/// 0/1, wrapping arithmetic, safe division).
fn bin_apply(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
        BinOp::Xor => i64::from((a != 0) ^ (b != 0)),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{SlotInfo, SlotKind};
    use crate::profile::{assemble, Profile};
    use polis_expr::Type;

    fn program(insts: Vec<Inst>) -> VmProgram {
        VmProgram {
            name: "t".into(),
            insts,
            slots: vec![SlotInfo {
                name: "x".into(),
                ty: Type::uint(4),
                kind: SlotKind::State,
                init: 3,
            }],
            num_inputs: 2,
            num_outputs: 2,
            out_types: vec![None, None],
        }
    }

    fn run(p: &VmProgram, present: Vec<bool>) -> (VmMemory, CollectingHost, RunStats) {
        let obj = assemble(p, Profile::Mcu8);
        let mut mem = VmMemory::new(p);
        let mut host = CollectingHost::new(present);
        let stats = run_reaction(p, &obj, &mut mem, &mut host).unwrap();
        (mem, host, stats)
    }

    #[test]
    fn arithmetic_and_store_wraps() {
        let p = program(vec![
            Inst::PushVar(0),
            Inst::PushImm(14),
            Inst::Binary(BinOp::Add),
            Inst::StoreVar(0), // 3 + 14 = 17 -> wraps to 1 in u4
            Inst::Return,
        ]);
        let (mem, _, stats) = run(&p, vec![]);
        assert_eq!(mem.get(0), 1);
        assert_eq!(stats.executed, 5);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn branch_and_detect() {
        let p = program(vec![
            Inst::Detect(0),
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::EmitPure(1),
            Inst::Consume,
            Inst::Return,
        ]);
        let (_, host, s_absent) = run(&p, vec![false]);
        assert!(host.emissions.is_empty());
        assert!(!host.consumed);
        let (_, host, s_present) = run(&p, vec![true]);
        assert_eq!(host.emissions, vec![(1, None)]);
        assert!(host.consumed);
        assert!(s_present.cycles > s_absent.cycles);
    }

    #[test]
    fn jump_table_dispatch() {
        let p = program(vec![
            Inst::PushVar(0), // init 3... use imm instead
            Inst::Return,
        ]);
        let _ = p;
        let p = program(vec![
            Inst::PushImm(1),
            Inst::JumpTable(vec![3, 5, 7]),
            Inst::Return,
            Inst::EmitPure(0),
            Inst::Return,
            Inst::EmitPure(1),
            Inst::Return,
            Inst::Consume,
            Inst::Return,
        ]);
        let (_, host, _) = run(&p, vec![]);
        assert_eq!(host.emissions, vec![(1, None)]);
    }

    #[test]
    fn jump_table_out_of_range_is_error() {
        let p = program(vec![
            Inst::PushImm(9),
            Inst::JumpTable(vec![2]),
            Inst::Return,
        ]);
        let obj = assemble(&p, Profile::Mcu8);
        let mut mem = VmMemory::new(&p);
        let mut host = CollectingHost::default();
        let err = run_reaction(&p, &obj, &mut mem, &mut host).unwrap_err();
        assert!(matches!(err, RunError::BadTableIndex { index: 9, .. }));
    }

    #[test]
    fn ctrl_bit_instructions() {
        let p = program(vec![
            Inst::SetCtrlBits {
                slot: 0,
                bits: vec![(0, true), (1, false)],
                width: 2,
            }, // x = 0b10 = 2
            Inst::PushCtrlBit {
                slot: 0,
                bit: 0,
                width: 2,
            },
            Inst::StoreCtrlBit {
                slot: 0,
                bit: 1,
                width: 2,
            }, // bit1 := bit0 (=1) -> x = 0b11
            Inst::Return,
        ]);
        let (mem, _, _) = run(&p, vec![]);
        assert_eq!(mem.get(0), 3);
    }

    #[test]
    fn missing_return_detected() {
        let p = program(vec![Inst::PushImm(1)]);
        let obj = assemble(&p, Profile::Mcu8);
        let mut mem = VmMemory::new(&p);
        let mut host = CollectingHost::default();
        assert_eq!(
            run_reaction(&p, &obj, &mut mem, &mut host).unwrap_err(),
            RunError::MissingReturn
        );
    }

    #[test]
    fn safe_division_matches_expr_semantics() {
        assert_eq!(bin_apply(BinOp::Div, 7, 0), 0);
        assert_eq!(bin_apply(BinOp::Rem, 7, 0), 0);
        assert_eq!(bin_apply(BinOp::Div, 7, 2), 3);
        assert_eq!(bin_apply(BinOp::Xor, 1, 1), 0);
        assert_eq!(bin_apply(BinOp::Min, -2, 5), -2);
    }
}
