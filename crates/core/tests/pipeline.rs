//! Tests for the staged, instrumented pipeline: parallel synthesis is
//! byte-identical to sequential, and the trace records every stage with
//! meaningful layer-native counters.

use polis_core::{
    synthesize_network_staged, synthesize_traced, workloads, MetricValue, SynthTrace,
    SynthesisOptions,
};
use polis_rtos::RtosConfig;

/// `--jobs N` must not change a single output byte: per-machine synthesis
/// is independent and results are merged in network order.
#[test]
fn parallel_synthesis_is_byte_identical_to_sequential() {
    for net in [workloads::seat_belt(), workloads::shock_absorber()] {
        let opts = SynthesisOptions::default();
        let rtos = RtosConfig::default();
        let (seq, _) = synthesize_network_staged(&net, &opts, &rtos, 1).unwrap();
        let (par, _) = synthesize_network_staged(&net, &opts, &rtos, 4).unwrap();

        assert_eq!(seq.machines.len(), par.machines.len());
        for (a, b) in seq.machines.iter().zip(&par.machines) {
            assert_eq!(a.c_code, b.c_code, "generated C differs under --jobs");
            assert_eq!(a.estimate, b.estimate, "estimate differs under --jobs");
            assert_eq!(a.measured, b.measured, "measurement differs under --jobs");
            assert_eq!(
                a.max_cycles_false_path_aware, b.max_cycles_false_path_aware,
                "false-path analysis differs under --jobs"
            );
        }
        assert_eq!(seq.rtos_c, par.rtos_c);
        assert_eq!(seq.total_rom, par.total_rom);
        assert_eq!(seq.total_ram, par.total_ram);
    }
}

/// Oversubscription (more jobs than machines) is clamped and harmless.
#[test]
fn more_jobs_than_machines_is_fine() {
    let net = workloads::seat_belt();
    let opts = SynthesisOptions::default();
    let rtos = RtosConfig::default();
    let (seq, _) = synthesize_network_staged(&net, &opts, &rtos, 1).unwrap();
    let (par, _) = synthesize_network_staged(&net, &opts, &rtos, 64).unwrap();
    for (a, b) in seq.machines.iter().zip(&par.machines) {
        assert_eq!(a.c_code, b.c_code);
    }
}

/// The parallel trace contains the same stages with the same counters as
/// the sequential trace, in the same (network) order; only wall times may
/// differ.
#[test]
fn parallel_trace_matches_sequential_modulo_wall_time() {
    type TraceShape = Vec<(String, Option<String>, Vec<(String, MetricValue)>)>;
    let net = workloads::shock_absorber();
    let opts = SynthesisOptions::default();
    let rtos = RtosConfig::default();
    let shape = |t: &SynthTrace| -> TraceShape {
        t.records()
            .iter()
            .map(|r| (r.stage.to_owned(), r.machine.clone(), r.counters.clone()))
            .collect()
    };
    let (_, t1) = synthesize_network_staged(&net, &opts, &rtos, 1).unwrap();
    let (_, t4) = synthesize_network_staged(&net, &opts, &rtos, 4).unwrap();
    assert_eq!(shape(&t1), shape(&t4));
}

/// Fig. 1's `simple` module, with collapsing enabled so every decision-
/// graph stage runs: the trace holds each stage exactly once, in pipeline
/// order, with non-zero layer counters.
#[test]
fn trace_records_every_stage_once_for_simple() {
    let opts = SynthesisOptions {
        collapse: true,
        ..SynthesisOptions::default()
    };
    let (_, trace) = synthesize_traced(&workloads::simple(), &opts);
    let stages: Vec<&str> = trace.records().iter().map(|r| r.stage).collect();
    assert_eq!(
        stages,
        ["chi", "sift", "sgraph", "collapse", "compile", "emit_c", "estimate", "measure"]
    );
    for r in trace.records() {
        assert_eq!(r.machine.as_deref(), Some("simple"), "stage {}", r.stage);
    }

    let counter = |stage: &str, name: &str| -> u64 {
        let r = trace
            .records()
            .iter()
            .find(|r| r.stage == stage)
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        match r.counter(name) {
            Some(MetricValue::Int(v)) => v,
            other => panic!("{stage}.{name}: {other:?}"),
        }
    };
    // BDD layer actually did work.
    assert!(counter("chi", "bdd_nodes") > 0);
    assert!(counter("chi", "mk_calls") > 0);
    assert!(counter("chi", "unique_entries") > 0);
    // Sifting recorded its before/after sizes.
    assert!(counter("sift", "bdd_nodes_before") > 0);
    assert!(counter("sift", "bdd_nodes_after") > 0);
    // Storage-layer counters from the overhauled kernel are present and
    // consistent: the high-water mark bounds the live size on both stages.
    assert!(counter("chi", "peak_live_nodes") >= counter("chi", "bdd_nodes"));
    assert!(counter("sift", "peak_live_nodes") >= counter("sift", "bdd_nodes_after"));
    // The s-graph is non-trivial and collapse kept it consistent.
    assert!(counter("sgraph", "reachable") > 2);
    assert!(counter("sgraph", "tests") > 0);
    assert!(counter("collapse", "nodes_after") <= counter("collapse", "nodes_before"));
    // Emission, estimation, and measurement all produced non-zero results.
    assert!(counter("emit_c", "lines") > 0);
    assert!(counter("estimate", "est_max_cycles") >= counter("estimate", "est_min_cycles"));
    assert!(counter("estimate", "est_max_cycles") > 0);
    assert!(counter("compile", "code_bytes") > 0);
    assert!(counter("measure", "max_cycles") >= counter("measure", "min_cycles"));
    assert!(counter("measure", "max_cycles") > 0);

    // The JSON serialization covers every stage and is non-degenerate.
    let json = trace.to_json();
    for s in [
        "chi", "sift", "sgraph", "collapse", "compile", "emit_c", "estimate", "measure",
    ] {
        assert!(json.contains(&format!("\"stage\": \"{s}\"")), "{s} in JSON");
    }
}

/// Without collapsing, the collapse stage must not appear.
#[test]
fn collapse_stage_only_runs_when_requested() {
    let (_, trace) = synthesize_traced(&workloads::simple(), &SynthesisOptions::default());
    assert!(trace.records().iter().all(|r| r.stage != "collapse"));
}
