/root/repo/target/release/deps/table3-732317fdb60b6be3.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-732317fdb60b6be3: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
