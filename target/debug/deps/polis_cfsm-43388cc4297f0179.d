/root/repo/target/debug/deps/polis_cfsm-43388cc4297f0179.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/debug/deps/libpolis_cfsm-43388cc4297f0179.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
