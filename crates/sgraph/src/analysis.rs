//! Data-flow analyses over s-graphs.
//!
//! The shock-absorber experiment (Section V-B) attributes most of the
//! synthesized ROM/RAM overhead to the blanket copy of "all variables used
//! by an s-graph upon entry", and announces "a data flow analysis step that
//! will allow us to detect write-before-read cases that require such
//! buffering" as future work. [`vars_needing_buffer`] is that analysis: a
//! state variable needs an entry copy only if some execution path may
//! *read* it (in a test, an emission value, or an assignment right-hand
//! side) after an assignment to it has already executed.

use crate::graph::{AssignLabel, SGraph, SNode, TestLabel};
use polis_cfsm::{Action, Cfsm};
use std::collections::{BTreeSet, HashMap, HashSet};

/// How aggressively code generators buffer state variables on reaction
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferPolicy {
    /// Copy every referenced variable (the paper's implementation, whose
    /// ROM/RAM cost Section V-B discusses).
    All,
    /// Copy only variables with a write-before-read hazard (the paper's
    /// announced future-work data-flow optimization).
    Minimal,
}

/// Returns the names of state variables that must be copied on reaction
/// entry to preserve the read-pre-state semantics.
///
/// The analysis is a conservative forward data-flow pass: for each vertex
/// it accumulates the set of variables possibly written on *some* path to
/// it; any vertex reading such a variable marks it as needing a buffer.
pub fn vars_needing_buffer(cfsm: &Cfsm, g: &SGraph) -> BTreeSet<String> {
    // Reads/writes per vertex, by state-variable name.
    let test_reads =
        |test: usize| -> Vec<String> { expr_state_reads(cfsm, &cfsm.tests()[test].expr) };
    let action_rw = |action: usize| -> (Vec<String>, Option<String>) {
        match &cfsm.actions()[action] {
            Action::Emit { value, .. } => (
                value
                    .as_ref()
                    .map(|e| expr_state_reads(cfsm, e))
                    .unwrap_or_default(),
                None,
            ),
            Action::Assign { var, value } => (
                expr_state_reads(cfsm, value),
                Some(cfsm.state_vars()[*var].name.clone()),
            ),
        }
    };

    let mut written_before: HashMap<crate::NodeId, HashSet<String>> = HashMap::new();
    let mut need = BTreeSet::new();
    let order = g.topo_order();
    for &id in &order {
        let before = written_before.entry(id).or_default().clone();
        let mut after = before.clone();
        let mut reads: Vec<String> = Vec::new();
        match g.node(id) {
            SNode::Begin { .. } | SNode::End => {}
            SNode::Test { label, .. } => match label {
                TestLabel::TestExpr { test } => reads = test_reads(*test),
                TestLabel::Compound { cond } => {
                    collect_cond_tests(cond, &mut |t| reads.extend(test_reads(t)));
                }
                _ => {}
            },
            SNode::Assign { label, .. } => match label {
                AssignLabel::Action { action } => {
                    let (r, w) = action_rw(*action);
                    reads = r;
                    if let Some(w) = w {
                        after.insert(w);
                    }
                }
                AssignLabel::Computed { target, cond } => {
                    collect_cond_tests(cond, &mut |t| reads.extend(test_reads(t)));
                    if let crate::ComputedTarget::Action { action } = target {
                        let (r, w) = action_rw(*action);
                        reads.extend(r);
                        if let Some(w) = w {
                            after.insert(w);
                        }
                    }
                }
                AssignLabel::Consume | AssignLabel::NextCtrlBits { .. } => {}
            },
        }
        for r in reads {
            if before.contains(&r) {
                need.insert(r);
            }
        }
        // Propagate to successors (union over predecessors).
        let succs: Vec<crate::NodeId> = match g.node(id) {
            SNode::Begin { next } | SNode::Assign { next, .. } => vec![*next],
            SNode::End => vec![],
            SNode::Test { children, .. } => children.clone(),
        };
        for s in succs {
            written_before
                .entry(s)
                .or_default()
                .extend(after.iter().cloned());
        }
    }
    need
}

/// All state variables an s-graph can read or write (used to size the
/// local-copy frame when buffering everything, the paper's default).
pub fn vars_referenced(cfsm: &Cfsm, g: &SGraph) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for id in g.reachable() {
        match g.node(id) {
            SNode::Test {
                label: TestLabel::TestExpr { test },
                ..
            } => out.extend(expr_state_reads(cfsm, &cfsm.tests()[*test].expr)),
            SNode::Test {
                label: TestLabel::Compound { cond },
                ..
            } => collect_cond_tests(cond, &mut |t| {
                out.extend(expr_state_reads(cfsm, &cfsm.tests()[t].expr))
            }),
            SNode::Assign { label, .. } => match label {
                AssignLabel::Action { action } => collect_action_vars(cfsm, *action, &mut out),
                AssignLabel::Computed { target, cond } => {
                    collect_cond_tests(cond, &mut |t| {
                        out.extend(expr_state_reads(cfsm, &cfsm.tests()[t].expr))
                    });
                    if let crate::ComputedTarget::Action { action } = target {
                        collect_action_vars(cfsm, *action, &mut out);
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    out
}

fn collect_action_vars(cfsm: &Cfsm, action: usize, out: &mut BTreeSet<String>) {
    match &cfsm.actions()[action] {
        Action::Emit { value, .. } => {
            if let Some(e) = value {
                out.extend(expr_state_reads(cfsm, e));
            }
        }
        Action::Assign { var, value } => {
            out.insert(cfsm.state_vars()[*var].name.clone());
            out.extend(expr_state_reads(cfsm, value));
        }
    }
}

fn expr_state_reads(cfsm: &Cfsm, e: &polis_expr::Expr) -> Vec<String> {
    e.support()
        .into_iter()
        .filter(|n| cfsm.state_var_index(n).is_some())
        .collect()
}

fn collect_cond_tests(cond: &crate::Cond, f: &mut impl FnMut(usize)) {
    use crate::Cond;
    match cond {
        Cond::Test(t) => f(*t),
        Cond::Not(a) => collect_cond_tests(a, f),
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_cond_tests(a, f);
            collect_cond_tests(b, f);
        }
        Cond::Const(_) | Cond::Present(_) | Cond::CtrlBit { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use polis_cfsm::{Cfsm, ReactiveFn};
    use polis_expr::{Expr, Type, Value};

    /// simple: both transitions assign `a`, and the test reads `a`, but the
    /// test is evaluated *before* any assignment on every path, so no
    /// buffering is needed.
    #[test]
    fn simple_needs_no_buffering() {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        let m = b.build().unwrap();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        assert!(vars_needing_buffer(&m, &g).is_empty());
        assert_eq!(
            vars_referenced(&m, &g),
            ["a".to_string()].into_iter().collect()
        );
    }

    /// Swap via two assignments: y := x runs after x := y on some path
    /// order, so at least one variable needs buffering.
    #[test]
    fn swap_needs_buffering() {
        let mut b = Cfsm::builder("swap");
        b.input_pure("go");
        b.state_var("x", Type::uint(8), Value::Int(1));
        b.state_var("y", Type::uint(8), Value::Int(2));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .assign("x", Expr::var("y"))
            .assign("y", Expr::var("x"))
            .done();
        let m = b.build().unwrap();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let need = vars_needing_buffer(&m, &g);
        assert!(!need.is_empty(), "swap requires at least one buffer");
    }

    /// An emission whose value reads a variable assigned earlier on the
    /// path must also trigger buffering.
    #[test]
    fn emit_after_write_needs_buffering() {
        let mut b = Cfsm::builder("ew");
        b.input_pure("go");
        b.output_valued("out", Type::uint(8));
        b.state_var("n", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .assign("n", Expr::var("n").add(Expr::int(1)))
            .emit_value("out", Expr::var("n"))
            .done();
        let m = b.build().unwrap();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        // Whether `n` needs buffering depends on the action order on the
        // path; the analysis must be conservative over the actual graph.
        let need = vars_needing_buffer(&m, &g);
        // The assignment and the emission both appear; if the assignment
        // precedes the emission in the BDD order, n must be buffered.
        let order_has_write_first = {
            let mut saw_write = false;
            let mut read_after = false;
            for id in g.topo_order() {
                if let SNode::Assign {
                    label: AssignLabel::Action { action },
                    ..
                } = g.node(id)
                {
                    match &m.actions()[*action] {
                        Action::Assign { .. } => saw_write = true,
                        Action::Emit { .. } if saw_write => read_after = true,
                        Action::Emit { .. } => {}
                    }
                }
            }
            read_after
        };
        assert_eq!(need.contains("n"), order_has_write_first);
    }
}
