/root/repo/target/debug/deps/table2-ad62e0c0a9f1392a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ad62e0c0a9f1392a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
