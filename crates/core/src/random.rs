//! Random CFSM and network generation for benchmarks and stress tests,
//! driven by a small self-contained PRNG (no external dependencies, so the
//! workspace builds offline).

use polis_cfsm::{Cfsm, Network};
use polis_expr::{Expr, Type, Value};
use std::ops::Range;

/// A deterministic splitmix64 pseudo-random number generator.
///
/// The whole workspace uses this one generator for randomized tests and
/// benchmark inputs: it is seedable, portable, and has no dependencies.
/// Not cryptographic — do not use it for anything security-relevant.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `u64` in `range` (empty ranges panic).
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// A uniform `usize` in `range`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `i64` in `range`.
    pub fn i64(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as i64
    }

    /// An unbiased coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }
}

/// Shape parameters for [`random_cfsm`] / [`random_network`].
#[derive(Debug, Clone, Copy)]
pub struct RandomSpec {
    /// Number of control states (≥ 1).
    pub states: usize,
    /// Pure input events.
    pub pure_inputs: usize,
    /// Valued input events (u8).
    pub valued_inputs: usize,
    /// Pure output events.
    pub outputs: usize,
    /// Data state variables (u8).
    pub vars: usize,
    /// Transitions.
    pub transitions: usize,
}

impl Default for RandomSpec {
    fn default() -> RandomSpec {
        RandomSpec {
            states: 3,
            pure_inputs: 2,
            valued_inputs: 1,
            outputs: 2,
            vars: 1,
            transitions: 8,
        }
    }
}

/// Generates a deterministic pseudo-random CFSM from `seed`.
pub fn random_cfsm(name: &str, spec: &RandomSpec, seed: u64) -> Cfsm {
    let mut rng = Rng::new(seed);
    let mut b = Cfsm::builder(name);
    for i in 0..spec.pure_inputs {
        b.input_pure(format!("p{i}"));
    }
    for i in 0..spec.valued_inputs {
        b.input_valued(format!("v{i}"), Type::uint(8));
    }
    for i in 0..spec.outputs {
        b.output_pure(format!("o{i}"));
    }
    for i in 0..spec.vars {
        b.state_var(format!("x{i}"), Type::uint(8), Value::Int(0));
    }
    let states: Vec<_> = (0..spec.states.max(1))
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    // A few comparison tests between variables and event values.
    let mut tests = Vec::new();
    for i in 0..spec.vars.min(spec.valued_inputs).max(1) {
        let var = format!("x{}", i % spec.vars.max(1));
        let val = if spec.valued_inputs > 0 {
            Expr::var(format!("v{}_value", i % spec.valued_inputs))
        } else {
            Expr::int(7)
        };
        if spec.vars > 0 {
            tests.push(b.test(format!("t{i}"), Expr::var(var).lt(val)));
        }
    }
    let n_inputs = spec.pure_inputs + spec.valued_inputs;
    for _ in 0..spec.transitions {
        let from = states[rng.usize(0..states.len())];
        let to = states[rng.usize(0..states.len())];
        let mut tb = b.transition(from, to);
        // Require at least one presence atom so reactions are triggered.
        let trig = rng.usize(0..n_inputs);
        let name = if trig < spec.pure_inputs {
            format!("p{trig}")
        } else {
            format!("v{}", trig - spec.pure_inputs)
        };
        tb = tb.when_present(&name);
        if !tests.is_empty() && rng.chance(0.5) {
            let t = tests[rng.usize(0..tests.len())];
            tb = if rng.chance(0.5) {
                tb.when_test(t)
            } else {
                tb.when_not_test(t)
            };
        }
        if spec.outputs > 0 && rng.chance(0.7) {
            tb = tb.emit(&format!("o{}", rng.usize(0..spec.outputs)));
        }
        if spec.vars > 0 && rng.chance(0.6) {
            let v = format!("x{}", rng.usize(0..spec.vars));
            let e = if rng.chance(0.5) {
                Expr::var(v.clone()).add(Expr::int(1))
            } else {
                Expr::int(rng.i64(0..16))
            };
            tb = tb.assign(&v, e);
        }
        tb.done();
    }
    b.build().expect("generated machine is valid")
}

/// Generates a pipeline network of `n` random machines where machine `k`
/// consumes an event emitted by machine `k-1`.
pub fn random_network(n: usize, _spec: &RandomSpec, seed: u64) -> Network {
    let mut machines = Vec::with_capacity(n);
    for k in 0..n {
        let mut b = Cfsm::builder(format!("m{k}"));
        // External trigger plus the internal feed from the previous stage.
        b.input_pure(format!("ext{k}"));
        if k > 0 {
            b.input_pure(format!("link{k}"));
        }
        b.output_pure(format!("link{}", k + 1));
        b.state_var("n", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("a");
        let s1 = b.ctrl_state("b");
        let mut rng = Rng::new(seed.wrapping_add(k as u64));
        let fwd = format!("link{}", k + 1);
        let trig = if k > 0 && rng.chance(0.8) {
            format!("link{k}")
        } else {
            format!("ext{k}")
        };
        b.transition(s0, s1)
            .when_present(&trig)
            .emit(&fwd)
            .assign("n", Expr::var("n").add(Expr::int(1)))
            .done();
        b.transition(s1, s0).when_present(&trig).emit(&fwd).done();
        machines.push(b.build().expect("pipeline stage is valid"));
    }
    Network::new("random_pipeline", machines).expect("pipeline network is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(2);
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..1000 {
            let v = c.usize(3..17);
            assert!((3..17).contains(&v));
            let w = c.i64(-5..6);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(3);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn random_cfsm_is_deterministic_per_seed() {
        let spec = RandomSpec::default();
        let a = random_cfsm("m", &spec, 42);
        let b = random_cfsm("m", &spec, 42);
        assert_eq!(a, b);
        let c = random_cfsm("m", &spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_cfsm_synthesizes() {
        let spec = RandomSpec::default();
        for seed in 0..5 {
            let m = random_cfsm("m", &spec, seed);
            let r = crate::synthesize(&m, &crate::SynthesisOptions::default());
            assert!(r.measured.size_bytes > 0, "seed {seed}");
        }
    }

    #[test]
    fn random_network_is_acyclic_pipeline() {
        let net = random_network(4, &RandomSpec::default(), 7);
        assert_eq!(net.cfsms().len(), 4);
        assert!(net.topo_order().is_some());
    }
}
