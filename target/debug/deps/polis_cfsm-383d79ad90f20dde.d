/root/repo/target/debug/deps/polis_cfsm-383d79ad90f20dde.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/debug/deps/polis_cfsm-383d79ad90f20dde: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
