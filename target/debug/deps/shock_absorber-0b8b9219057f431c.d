/root/repo/target/debug/deps/shock_absorber-0b8b9219057f431c.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/debug/deps/libshock_absorber-0b8b9219057f431c.rmeta: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
