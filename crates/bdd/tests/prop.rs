//! Property-based tests: the BDD package against brute-force truth tables.

use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef, Var};
use proptest::prelude::*;

/// A random Boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum BoolExpr {
    Const(bool),
    Var(usize),
    Not(Box<BoolExpr>),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Xor(Box<BoolExpr>, Box<BoolExpr>),
    Ite(Box<BoolExpr>, Box<BoolExpr>, Box<BoolExpr>),
}

const NVARS: usize = 6;

fn arb_expr() -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(BoolExpr::Const),
        (0..NVARS).prop_map(BoolExpr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| BoolExpr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| BoolExpr::Ite(Box::new(c), Box::new(t), Box::new(e))),
        ]
    })
}

impl BoolExpr {
    fn eval(&self, bits: u32) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(i) => bits & (1 << i) != 0,
            BoolExpr::Not(a) => !a.eval(bits),
            BoolExpr::And(a, b) => a.eval(bits) && b.eval(bits),
            BoolExpr::Or(a, b) => a.eval(bits) || b.eval(bits),
            BoolExpr::Xor(a, b) => a.eval(bits) ^ b.eval(bits),
            BoolExpr::Ite(c, t, e) => {
                if c.eval(bits) {
                    t.eval(bits)
                } else {
                    e.eval(bits)
                }
            }
        }
    }

    fn build(&self, bdd: &mut Bdd, vars: &[Var]) -> NodeRef {
        match self {
            BoolExpr::Const(b) => bdd.constant(*b),
            BoolExpr::Var(i) => bdd.var(vars[*i]),
            BoolExpr::Not(a) => {
                let fa = a.build(bdd, vars);
                bdd.not(fa)
            }
            BoolExpr::And(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.and(fa, fb)
            }
            BoolExpr::Or(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.or(fa, fb)
            }
            BoolExpr::Xor(a, b) => {
                let fa = a.build(bdd, vars);
                let fb = b.build(bdd, vars);
                bdd.xor(fa, fb)
            }
            BoolExpr::Ite(c, t, e) => {
                let fc = c.build(bdd, vars);
                let ft = t.build(bdd, vars);
                let fe = e.build(bdd, vars);
                bdd.ite(fc, ft, fe)
            }
        }
    }
}

fn setup(expr: &BoolExpr) -> (Bdd, Vec<Var>, NodeRef) {
    let mut bdd = Bdd::new();
    let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
    let f = expr.build(&mut bdd, &vars);
    (bdd, vars, f)
}

proptest! {
    #[test]
    fn bdd_matches_truth_table(expr in arb_expr()) {
        let (bdd, vars, f) = setup(&expr);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            prop_assert_eq!(bdd.eval(f, assign), expr.eval(bits), "bits={:06b}", bits);
        }
    }

    #[test]
    fn sat_count_matches_truth_table(expr in arb_expr()) {
        let (bdd, _vars, f) = setup(&expr);
        let brute = (0..1u32 << NVARS).filter(|&b| expr.eval(b)).count() as u128;
        prop_assert_eq!(bdd.sat_count(f), brute);
    }

    #[test]
    fn restrict_matches_substitution(expr in arb_expr(), vi in 0..NVARS, val in any::<bool>()) {
        let (mut bdd, vars, f) = setup(&expr);
        let r = bdd.restrict(f, vars[vi], val);
        // The restricted function no longer depends on the variable.
        prop_assert!(!bdd.support(r).contains(&vars[vi]));
        for bits in 0..1u32 << NVARS {
            let forced = if val { bits | (1 << vi) } else { bits & !(1 << vi) };
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            prop_assert_eq!(bdd.eval(r, assign), expr.eval(forced));
        }
    }

    #[test]
    fn exists_is_or_of_cofactors(expr in arb_expr(), vi in 0..NVARS) {
        let (mut bdd, vars, f) = setup(&expr);
        let e = bdd.exists(f, vars[vi]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            let want = expr.eval(bits | (1 << vi)) || expr.eval(bits & !(1 << vi));
            prop_assert_eq!(bdd.eval(e, assign), want);
        }
    }

    #[test]
    fn sifting_preserves_function_and_never_grows(expr in arb_expr()) {
        let (mut bdd, vars, f) = setup(&expr);
        bdd.gc(&[f]);
        let before = bdd.size(&[f]);
        let after = bdd.sift(&[f], &SiftConfig::to_convergence());
        prop_assert!(after <= before, "sift grew the BDD: {} -> {}", before, after);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            prop_assert_eq!(bdd.eval(f, assign), expr.eval(bits));
        }
    }

    #[test]
    fn random_swaps_preserve_canonicity(expr in arb_expr(), swaps in proptest::collection::vec(0..NVARS - 1, 0..12)) {
        let (mut bdd, vars, f) = setup(&expr);
        for l in swaps {
            bdd.swap_levels(l);
        }
        // Rebuilding the same function must land on the same node.
        let g = expr.build(&mut bdd, &vars);
        prop_assert_eq!(f, g, "canonicity violated after swaps");
    }

    #[test]
    fn forall_is_and_of_cofactors(expr in arb_expr(), vi in 0..NVARS) {
        let (mut bdd, vars, f) = setup(&expr);
        let a = bdd.forall(f, vars[vi]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            let want = expr.eval(bits | (1 << vi)) && expr.eval(bits & !(1 << vi));
            prop_assert_eq!(bdd.eval(a, assign), want);
        }
    }

    #[test]
    fn iff_and_implies_laws(ea in arb_expr(), eb in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
        let fa = ea.build(&mut bdd, &vars);
        let fb = eb.build(&mut bdd, &vars);
        let iff = bdd.iff(fa, fb);
        let imp_ab = bdd.implies(fa, fb);
        let imp_ba = bdd.implies(fb, fa);
        // (a <-> b) == (a -> b) && (b -> a), canonically.
        let both = bdd.and(imp_ab, imp_ba);
        prop_assert_eq!(iff, both);
        // a -> a is a tautology.
        prop_assert!(bdd.implies(fa, fa).is_true());
    }

    #[test]
    fn pick_cube_always_satisfies(expr in arb_expr()) {
        let (bdd, _vars, f) = setup(&expr);
        match bdd.pick_cube(f) {
            None => prop_assert!(f.is_false()),
            Some(cube) => {
                let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
                prop_assert!(bdd.eval(f, assign));
            }
        }
    }

    #[test]
    fn gc_preserves_registered_roots(expr in arb_expr(), other in arb_expr()) {
        let mut bdd = Bdd::new();
        let vars: Vec<Var> = (0..NVARS).map(|i| bdd.new_var(format!("x{i}"))).collect();
        let f = expr.build(&mut bdd, &vars);
        let _garbage = other.build(&mut bdd, &vars);
        bdd.gc(&[f]);
        for bits in 0..1u32 << NVARS {
            let assign = |v: Var| {
                let i = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << i) != 0
            };
            prop_assert_eq!(bdd.eval(f, assign), expr.eval(bits));
        }
        // Rebuilding after GC still hash-conses onto the kept root.
        let g = expr.build(&mut bdd, &vars);
        prop_assert_eq!(f, g);
    }

    #[test]
    fn mv_such_that_counts_match(domain in 1u64..24, modulus in 1u64..6) {
        let mut bdd = Bdd::new();
        let mv = polis_bdd::encode::MvVar::new(&mut bdd, "m", domain);
        let f = mv.such_that(&mut bdd, |v| v % modulus == 0);
        let expected = (0..domain).filter(|v| v % modulus == 0).count() as u128;
        prop_assert_eq!(bdd.sat_count(f), expected);
    }

    #[test]
    fn support_is_exact(expr in arb_expr()) {
        let (bdd, vars, f) = setup(&expr);
        let sup = bdd.support(f);
        for (i, &v) in vars.iter().enumerate() {
            let depends = (0..1u32 << NVARS).any(|bits| {
                expr.eval(bits | (1 << i)) != expr.eval(bits & !(1 << i))
            });
            prop_assert_eq!(sup.contains(&v), depends, "var {}", i);
        }
    }
}
