/root/repo/target/debug/deps/polis_expr-876804774d86e265.d: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

/root/repo/target/debug/deps/libpolis_expr-876804774d86e265.rmeta: crates/expr/src/lib.rs crates/expr/src/eval.rs crates/expr/src/print.rs crates/expr/src/types.rs

crates/expr/src/lib.rs:
crates/expr/src/eval.rs:
crates/expr/src/print.rs:
crates/expr/src/types.rs:
