/root/repo/target/debug/deps/polis_rtos-5d0310930666a9a5.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_rtos-5d0310930666a9a5.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs Cargo.toml

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
