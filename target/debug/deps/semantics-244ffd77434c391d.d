/root/repo/target/debug/deps/semantics-244ffd77434c391d.d: crates/rtos/tests/semantics.rs

/root/repo/target/debug/deps/libsemantics-244ffd77434c391d.rmeta: crates/rtos/tests/semantics.rs

crates/rtos/tests/semantics.rs:
