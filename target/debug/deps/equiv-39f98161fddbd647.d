/root/repo/target/debug/deps/equiv-39f98161fddbd647.d: crates/vm/tests/equiv.rs

/root/repo/target/debug/deps/equiv-39f98161fddbd647: crates/vm/tests/equiv.rs

crates/vm/tests/equiv.rs:
