/root/repo/target/release/deps/granularity-f6343fec3ceee272.d: crates/bench/src/bin/granularity.rs

/root/repo/target/release/deps/granularity-f6343fec3ceee272: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:
