/root/repo/target/debug/deps/prop-8a23726dc2596edc.d: crates/rtos/tests/prop.rs

/root/repo/target/debug/deps/prop-8a23726dc2596edc: crates/rtos/tests/prop.rs

crates/rtos/tests/prop.rs:
