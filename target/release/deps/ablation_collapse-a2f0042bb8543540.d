/root/repo/target/release/deps/ablation_collapse-a2f0042bb8543540.d: crates/bench/src/bin/ablation_collapse.rs

/root/repo/target/release/deps/ablation_collapse-a2f0042bb8543540: crates/bench/src/bin/ablation_collapse.rs

crates/bench/src/bin/ablation_collapse.rs:
