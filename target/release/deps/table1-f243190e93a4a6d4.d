/root/repo/target/release/deps/table1-f243190e93a4a6d4.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f243190e93a4a6d4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
