//! Decoded counterexample traces, reconstructed by a ring-by-ring
//! preimage walk over the reachability fixpoint's frontier onions.
//!
//! The fixpoint optionally stores each iteration's *exact* new-state set
//! (`raw = New ∖ Reached`, before `constrain` minimization) as an onion
//! ring; ring 0 is the initial state. The rings partition the reachable
//! set, and every state of ring *i* has a predecessor in some ring
//! *k < i* under one environment delivery or one machine reaction — the
//! minimized frontier handed to iteration *i* is always contained in
//! `⋃_{k<i} ring_k`.
//!
//! [`walk_trace`] exploits this: given a target set, it picks a full
//! product-state minterm in the earliest ring intersecting the target,
//! then repeatedly computes the *preimage of that one state point* under
//! each partition (the existing [`Bdd::and_exists`] kernel with the
//! variable rails swapped) and intersects with earlier rings until ring
//! 0 is reached. Each hop is decoded on the spot into machine control
//! states, buffer fills, the delivered signal or the fired transition
//! (identified by replaying the machine's declaration-order priority
//! under the picked data-test valuation) — a human-readable trace
//! instead of a witness cube.
//!
//! [`CexTrace::replay`] is the matching BDD-free oracle: it re-executes
//! the decoded steps on an explicit product state under the GALS
//! semantics (deliveries set every consumer flag; a reaction fires the
//! priority winner, clears the snapshot, and emits) and checks every
//! intermediate state byte-for-byte — the trace-soundness conformance
//! tests and `polis prop` both go through it.

use crate::model::{NetworkModel, ReactStep};
use polis_bdd::{Bdd, NodeRef, Var};
use polis_cfsm::{Action, Network};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Frontier onion rings captured during one reachability run.
/// `rings[0]` is the initial state; `rings[i]` the states first reached
/// at iteration `i`. When `complete` is false the tail was dropped (ring
/// cap or budget pressure) and only cube-level witnesses are possible
/// for states beyond the stored prefix.
pub(crate) struct TraceRings {
    /// Disjoint new-state sets, in iteration order.
    pub rings: Vec<NodeRef>,
    /// Whether every fixpoint iteration stored its ring.
    pub complete: bool,
}

impl TraceRings {
    /// The rings as GC/sift roots.
    pub fn roots(&self) -> &[NodeRef] {
        &self.rings
    }
}

/// A fully decoded product state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedState {
    /// Control-state index per machine, in network order.
    pub ctrl: Vec<usize>,
    /// Buffer fill bit per machine per input, in declaration order.
    pub pending: Vec<Vec<bool>>,
}

impl DecodedState {
    /// `m@s pending[a,b] | n@t` — one segment per machine.
    pub fn render(&self, net: &Network) -> String {
        let mut parts = Vec::with_capacity(net.cfsms().len());
        for (i, m) in net.cfsms().iter().enumerate() {
            let mut seg = format!("{}@{}", m.name(), m.states()[self.ctrl[i]]);
            let pend: Vec<&str> = m
                .inputs()
                .iter()
                .enumerate()
                .filter(|&(k, _)| self.pending[i][k])
                .map(|(_, s)| s.name())
                .collect();
            if !pend.is_empty() {
                let _ = write!(seg, " pending[{}]", pend.join(","));
            }
            parts.push(seg);
        }
        parts.join(" | ")
    }
}

/// One hop of a decoded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// The environment delivers primary input `signal` (every consumer's
    /// buffer fills).
    Deliver {
        /// The delivered primary signal.
        signal: String,
    },
    /// Machine `machine` fires `transition` (declaration index) under
    /// data-test valuation `tests`.
    React {
        /// Network machine index.
        machine: usize,
        /// Transition index within the machine (declaration order).
        transition: usize,
        /// Value of each of the machine's data tests when it fired.
        tests: Vec<bool>,
    },
}

impl TraceStep {
    /// `deliver tick` / `react frc #1 (counting -> saturated) [cnt>=200]`.
    pub fn render(&self, net: &Network) -> String {
        match self {
            TraceStep::Deliver { signal } => format!("deliver {signal}"),
            TraceStep::React {
                machine,
                transition,
                tests,
            } => {
                let m = &net.cfsms()[*machine];
                let t = &m.transitions()[*transition];
                let mut s = format!(
                    "react {} #{transition} ({} -> {})",
                    m.name(),
                    m.states()[t.from],
                    m.states()[t.to]
                );
                let lits: Vec<String> = m
                    .tests()
                    .iter()
                    .zip(tests)
                    .map(|(d, &v)| {
                        if v {
                            format!("[{}]", d.name)
                        } else {
                            format!("![{}]", d.name)
                        }
                    })
                    .collect();
                if !lits.is_empty() {
                    let _ = write!(s, " {}", lits.join(" "));
                }
                s
            }
        }
    }
}

/// A decoded execution from the initial state to a target state:
/// `states.len() == steps.len() + 1`, `states[0]` is the reset state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CexTrace {
    /// The visited product states, reset state first.
    pub states: Vec<DecodedState>,
    /// The hop between `states[i]` and `states[i + 1]`.
    pub steps: Vec<TraceStep>,
    /// Total BDD nodes across the preimage sets the walker computed.
    pub preimage_nodes: u64,
}

impl CexTrace {
    /// Number of steps (0 = the initial state is already the target).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is the empty execution.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Numbered human-readable lines: state, step, state, …
    pub fn render(&self, net: &Network) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  0: {}", self.states[0].render(net));
        for (i, step) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "     -- {}", step.render(net));
            let _ = writeln!(out, "  {}: {}", i + 1, self.states[i + 1].render(net));
        }
        out
    }

    /// Replays the trace on an explicit product state under the GALS
    /// semantics and checks every intermediate decoded state exactly;
    /// returns the final state. This is deliberately BDD-free — an
    /// independent oracle for the symbolic walker.
    ///
    /// # Errors
    ///
    /// A description of the first divergence (state mismatch, a react
    /// step that is not the priority winner, an unknown signal).
    pub fn replay(&self, net: &Network) -> Result<DecodedState, String> {
        let cfsms = net.cfsms();
        let mut cur = DecodedState {
            ctrl: cfsms.iter().map(|m| m.init_state()).collect(),
            pending: cfsms
                .iter()
                .map(|m| vec![false; m.inputs().len()])
                .collect(),
        };
        if cur != self.states[0] {
            return Err(format!(
                "trace does not start at the reset state: {} vs {}",
                self.states[0].render(net),
                cur.render(net)
            ));
        }
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                TraceStep::Deliver { signal } => {
                    let consumers = net.consumers_of(signal);
                    if consumers.is_empty() {
                        return Err(format!("step {i}: `{signal}` has no consumers"));
                    }
                    for c in consumers {
                        let k = cfsms[c]
                            .input_index(signal)
                            .ok_or_else(|| format!("step {i}: consumer lost `{signal}`"))?;
                        cur.pending[c][k] = true;
                    }
                }
                TraceStep::React {
                    machine,
                    transition,
                    tests,
                } => {
                    let m = &cfsms[*machine];
                    // The fired transition must be the declaration-order
                    // priority winner from the current control state
                    // under the recorded presence/test valuation.
                    let winner = m
                        .transitions()
                        .iter()
                        .position(|t| {
                            t.from == cur.ctrl[*machine]
                                && t.guard.eval(&cur.pending[*machine], tests)
                        })
                        .ok_or_else(|| {
                            format!("step {i}: no transition of `{}` is enabled", m.name())
                        })?;
                    if winner != *transition {
                        return Err(format!(
                            "step {i}: `{}` priority winner is #{winner}, trace fired #{transition}",
                            m.name()
                        ));
                    }
                    let t = &m.transitions()[winner];
                    // Snapshot consumption: firing clears every own buffer.
                    for f in &mut cur.pending[*machine] {
                        *f = false;
                    }
                    cur.ctrl[*machine] = t.to;
                    for &ai in &t.actions {
                        if let Action::Emit { signal, .. } = &m.actions()[ai] {
                            let name = m.outputs()[*signal].name().to_owned();
                            for c in net.consumers_of(&name) {
                                let k = cfsms[c]
                                    .input_index(&name)
                                    .ok_or_else(|| format!("step {i}: consumer lost `{name}`"))?;
                                cur.pending[c][k] = true;
                            }
                        }
                    }
                }
            }
            if cur != self.states[i + 1] {
                return Err(format!(
                    "step {i} diverges: expected {}, replay gives {}",
                    self.states[i + 1].render(net),
                    cur.render(net)
                ));
            }
        }
        Ok(cur)
    }
}

/// A full assignment to the model's current-state variables, kept both
/// as a map (for decoding) and as a minterm BDD (for preimages).
struct StatePoint {
    values: HashMap<Var, bool>,
    minterm: NodeRef,
}

/// Completes [`Bdd::pick_cube`]'s partial assignment over `set` to a full
/// minterm on `state_vars` (don't-cares to `false` — any completion of a
/// BDD path stays satisfying).
fn pick_state(bdd: &mut Bdd, set: NodeRef, state_vars: &[Var]) -> Option<StatePoint> {
    let cube = bdd.pick_cube(set)?;
    let mut values: HashMap<Var, bool> = state_vars.iter().map(|&v| (v, false)).collect();
    for (v, val) in cube {
        values.insert(v, val);
    }
    let mut minterm = NodeRef::TRUE;
    for &v in state_vars {
        let lit = if values[&v] { bdd.var(v) } else { bdd.nvar(v) };
        minterm = bdd.and(minterm, lit);
    }
    Some(StatePoint { values, minterm })
}

/// Decodes a state point into per-machine control states and fill bits.
fn decode_state(model: &NetworkModel, p: &StatePoint) -> DecodedState {
    let assign = |v: Var| p.values.get(&v).copied().unwrap_or(false);
    let ctrl = model
        .vars
        .iter()
        .map(|mv| {
            mv.ctrl_cur
                .as_ref()
                .map_or(0, |c| c.decode(assign) as usize)
        })
        .collect();
    let pending = model
        .vars
        .iter()
        .map(|mv| mv.flag_cur.iter().map(|&f| assign(f)).collect())
        .collect();
    DecodedState { ctrl, pending }
}

/// Picks and decodes one state of `set` — the cube-only witness used
/// when no rings are available for a full trace.
pub(crate) fn decode_point(model: &mut NetworkModel, set: NodeRef) -> Option<DecodedState> {
    let state_vars = model.state_vars.clone();
    let p = pick_state(&mut model.bdd, set, &state_vars)?;
    Some(decode_state(model, &p))
}

/// Preimage of the single state `t` under one machine reaction: rename
/// `t`'s written variables onto the next rail (the inverse of the step's
/// image renaming), conjoin the buffer-update/clear constraint, then one
/// fused relational product with `χ|consume=1` quantifying tests,
/// actions, and the next rail — the forward kernel with the rails
/// swapped. The result ranges over current-state variables only.
fn react_preimage(bdd: &mut Bdd, step: &ReactStep, t: NodeRef) -> NodeRef {
    let inverse: Vec<(Var, Var)> = step.rename.iter().map(|&(n, c)| (c, n)).collect();
    let t_next = bdd.rename(t, &inverse);
    let a = bdd.and(t_next, step.update_clear);
    let q = bdd.cube(
        step.q_tests
            .iter()
            .chain(&step.q_acts)
            .chain(step.rename.iter().map(|(n, _)| n))
            .copied(),
    );
    bdd.and_exists(a, step.chi_fire, q)
}

/// Identifies the transition that carries machine `mi` from `prev` into
/// the state point `t`: conjoin the feasible-firing set, pick a data-test
/// valuation, and replay the machine's declaration-order priority.
fn decode_react(
    model: &mut NetworkModel,
    net: &Network,
    mi: usize,
    prev: &StatePoint,
    t_next: NodeRef,
) -> Option<TraceStep> {
    let step = &model.react_steps[mi];
    let feasible = {
        let a = model.bdd.and(prev.minterm, step.chi_fire);
        let b = model.bdd.and(a, step.update_clear);
        model.bdd.and(b, t_next)
    };
    let cube = model.bdd.pick_cube(feasible)?;
    let assign = |v: Var| cube.iter().any(|&(cv, val)| cv == v && val);
    let tests: Vec<bool> = model.vars[mi].tests.iter().map(|&v| assign(v)).collect();
    let m = &net.cfsms()[mi];
    let from = model.vars[mi].ctrl_cur.as_ref().map_or(0, |c| {
        c.decode(|v| prev.values.get(&v).copied().unwrap_or(false)) as usize
    });
    let present: Vec<bool> = model.vars[mi]
        .flag_cur
        .iter()
        .map(|&f| prev.values.get(&f).copied().unwrap_or(false))
        .collect();
    let transition = m
        .transitions()
        .iter()
        .position(|t| t.from == from && t.guard.eval(&present, &tests))?;
    Some(TraceStep::React {
        machine: mi,
        transition,
        tests,
    })
}

/// Walks a violating/witness state in `target` back to the initial state
/// through the stored rings, decoding every hop. Returns `None` when the
/// target misses every *stored* ring (only possible on an incomplete
/// ring set) or, defensively, if a hop cannot be decoded.
pub(crate) fn walk_trace(
    model: &mut NetworkModel,
    net: &Network,
    rings: &TraceRings,
    target: NodeRef,
) -> Option<CexTrace> {
    let state_vars = model.state_vars.clone();
    let mut preimage_nodes = 0u64;
    // Earliest ring hit = shortest available trace skeleton.
    let (mut level, hit) = rings.rings.iter().enumerate().find_map(|(i, &r)| {
        let x = model.bdd.and(r, target);
        (!x.is_false()).then_some((i, x))
    })?;
    let mut point = pick_state(&mut model.bdd, hit, &state_vars)?;
    let mut rev_states = vec![decode_state(model, &point)];
    let mut rev_steps: Vec<TraceStep> = Vec::new();
    let signals = net.primary_inputs();
    while level > 0 {
        let mut hop: Option<(usize, StatePoint, TraceStep)> = None;
        'search: for k in 0..level {
            // Environment deliveries: the preimage of a point whose
            // delivered flags are all 1 frees exactly those flags.
            for (si, step) in model.env_steps.iter().enumerate() {
                let on_cube = model.bdd.constrain(point.minterm, step.cube);
                if on_cube.is_false() {
                    continue; // some delivered flag is 0 in the point
                }
                let pre = model.bdd.exists_cube(point.minterm, step.cube);
                preimage_nodes += model.bdd.size(&[pre]) as u64;
                let cand = model.bdd.and(pre, rings.rings[k]);
                if !cand.is_false() {
                    let prev = pick_state(&mut model.bdd, cand, &state_vars)?;
                    let s = TraceStep::Deliver {
                        signal: signals[si].clone(),
                    };
                    hop = Some((k, prev, s));
                    break 'search;
                }
            }
            for mi in 0..model.react_steps.len() {
                let step = &model.react_steps[mi];
                let pre = react_preimage(&mut model.bdd, step, point.minterm);
                preimage_nodes += model.bdd.size(&[pre]) as u64;
                let cand = model.bdd.and(pre, rings.rings[k]);
                if !cand.is_false() {
                    let prev = pick_state(&mut model.bdd, cand, &state_vars)?;
                    let inverse: Vec<(Var, Var)> =
                        step.rename.iter().map(|&(n, c)| (c, n)).collect();
                    let t_next = model.bdd.rename(point.minterm, &inverse);
                    let s = decode_react(model, net, mi, &prev, t_next)?;
                    hop = Some((k, prev, s));
                    break 'search;
                }
            }
        }
        // Every ring-i state has a predecessor in an earlier ring; a miss
        // here would be a model bug, so fail soft into the cube witness.
        let (k, prev, s) = hop?;
        rev_states.push(decode_state(model, &prev));
        rev_steps.push(s);
        point = prev;
        level = k;
    }
    rev_states.reverse();
    rev_steps.reverse();
    Some(CexTrace {
        states: rev_states,
        steps: rev_steps,
        preimage_nodes,
    })
}
