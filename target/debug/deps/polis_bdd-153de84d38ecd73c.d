/root/repo/target/debug/deps/polis_bdd-153de84d38ecd73c.d: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_bdd-153de84d38ecd73c.rmeta: crates/bdd/src/lib.rs crates/bdd/src/encode.rs crates/bdd/src/reorder.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/encode.rs:
crates/bdd/src/reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
