//! **Ablation (Section V-B, future work)** — the write-before-read
//! data-flow analysis that removes unnecessary entry copies.
//!
//! Per machine of the shock absorber and dashboard: ROM, RAM, and
//! worst-case cycles with the paper's buffer-all policy versus the
//! analyzed minimal-buffering policy.

use polis_core::{workloads, SynthesisOptions};
use polis_estimate::calibrate;
use polis_sgraph::BufferPolicy;
use polis_vm::Profile;

fn main() {
    let params = calibrate(Profile::Mcu8);
    let all = SynthesisOptions::default();
    let min = SynthesisOptions {
        buffering: BufferPolicy::Minimal,
        ..SynthesisOptions::default()
    };

    println!("Ablation: entry-copy buffering (Mcu8)\n");
    println!(
        "| {:<12} | {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9} |",
        "CFSM", "ROM[B]", "RAM[B]", "max[cyc]", "ROM'[B]", "RAM'[B]", "max'[cyc]"
    );
    println!("|{}|", "-".repeat(72));

    let mut rom_saved = 0i64;
    let mut ram_saved = 0i64;
    let mut cyc_saved = 0i64;
    for net in [workloads::shock_absorber(), workloads::dashboard()] {
        for m in net.cfsms() {
            let a = polis_core::synthesize_with_params(m, &all, &params);
            let b = polis_core::synthesize_with_params(m, &min, &params);
            rom_saved += a.measured.size_bytes as i64 - b.measured.size_bytes as i64;
            ram_saved += a.measured.ram_bytes as i64 - b.measured.ram_bytes as i64;
            cyc_saved += a.measured.max_cycles as i64 - b.measured.max_cycles as i64;
            println!(
                "| {:<12} | {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9} |",
                m.name(),
                a.measured.size_bytes,
                a.measured.ram_bytes,
                a.measured.max_cycles,
                b.measured.size_bytes,
                b.measured.ram_bytes,
                b.measured.max_cycles
            );
        }
    }
    println!(
        "\ntotal saved by the analysis: ROM {rom_saved} B, RAM {ram_saved} B, worst-case cycles {cyc_saved}"
    );
    println!(
        "shape check (paper: buffering reduction recovers ROM, RAM and CPU): {}",
        if rom_saved >= 0 && ram_saved > 0 && cyc_saved >= 0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
