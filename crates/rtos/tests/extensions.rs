//! Behavioural tests for the RTOS extensions: task chaining (IV-A),
//! hardware CFSMs (IV-C), and preemptive static-priority scheduling.

use polis_cfsm::{Cfsm, Network};
use polis_expr::{Expr, Type};
use polis_rtos::{RtosConfig, SchedulingPolicy, Simulator, Stimulus};
use std::collections::BTreeSet;

fn relay(name: &str, input: &str, output: &str) -> Cfsm {
    let mut b = Cfsm::builder(name);
    b.input_pure(input);
    b.output_pure(output);
    let s = b.ctrl_state("s");
    b.transition(s, s).when_present(input).emit(output).done();
    b.build().unwrap()
}

fn chain3() -> Network {
    Network::new(
        "chain",
        vec![
            relay("a", "in", "m1"),
            relay("b", "m1", "m2"),
            relay("c", "m2", "out"),
        ],
    )
    .unwrap()
}

#[test]
fn chaining_preserves_behaviour_and_saves_cycles() {
    let stim = vec![Stimulus::pure(0, "in"), Stimulus::pure(100_000, "in")];

    let mut plain = Simulator::build(&chain3(), RtosConfig::default());
    plain.run(&stim);

    let config = RtosConfig {
        chains: [
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "c".to_string()),
        ]
        .into(),
        ..RtosConfig::default()
    };
    let mut chained = Simulator::build(&chain3(), config);
    chained.run(&stim);

    // Same observable emissions.
    let sigs =
        |sim: &Simulator| -> Vec<String> { sim.trace().iter().map(|t| t.signal.clone()).collect() };
    assert_eq!(sigs(&plain), sigs(&chained));

    // Chained execution removes dispatch overhead: fewer busy cycles.
    assert!(
        chained.stats().busy_cycles < plain.stats().busy_cycles,
        "chained {} !< plain {}",
        chained.stats().busy_cycles,
        plain.stats().busy_cycles
    );
    assert_eq!(chained.stats().chained_reactions, 4); // b and c, twice
    assert_eq!(plain.stats().chained_reactions, 0);

    // And better input-to-output latency.
    let lp = plain.worst_latency(&stim, "in", "out").unwrap();
    let lc = chained.worst_latency(&stim, "in", "out").unwrap();
    assert!(lc < lp, "chained latency {lc} !< plain {lp}");
}

#[test]
fn hardware_cfsm_reacts_instantly_off_cpu() {
    // The front stage is "partitioned to hardware": its reaction costs no
    // CPU cycles and completes one cycle after the event.
    let net = chain3();
    let config = RtosConfig {
        hardware: ["a".to_string()].into(),
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&net, config);
    let stim = vec![Stimulus::pure(0, "in")];
    sim.run(&stim);

    let m1 = sim
        .trace()
        .iter()
        .find(|t| t.signal == "m1")
        .expect("hw emission");
    assert_eq!(m1.by, "a");
    // ISR (20 cycles) + 1 hardware cycle: long before any software
    // reaction could have finished.
    assert!(m1.time <= 25, "hw emission at {}", m1.time);
    // The chain still completes through the software stages.
    assert!(sim.trace().iter().any(|t| t.signal == "out"));
    // Only software reactions consume CPU: two tasks ran.
    assert_eq!(sim.stats().reactions, vec![1, 1, 1]);
}

#[test]
fn hardware_cfsm_carries_values() {
    let mut b = Cfsm::builder("hwdouble");
    b.input_valued("x", Type::uint(8));
    b.output_valued("y", Type::uint(8));
    let s = b.ctrl_state("s");
    b.transition(s, s)
        .when_present("x")
        .emit_value("y", Expr::var("x_value").mul(Expr::int(2)))
        .done();
    let hw = b.build().unwrap();

    let mut b = Cfsm::builder("swsink");
    b.input_valued("y", Type::uint(8));
    b.output_pure("big");
    let s = b.ctrl_state("s");
    let t = b.test("t", Expr::var("y_value").gt(Expr::int(10)));
    b.transition(s, s)
        .when_present("y")
        .when_test(t)
        .emit("big")
        .done();
    let sw = b.build().unwrap();

    let net = Network::new("hwsw", vec![hw, sw]).unwrap();
    let config = RtosConfig {
        hardware: ["hwdouble".to_string()].into(),
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&net, config);
    sim.run(&[
        Stimulus::valued(0, "x", 3),
        Stimulus::valued(50_000, "x", 9),
    ]);
    let ys: Vec<Option<i64>> = sim
        .trace()
        .iter()
        .filter(|t| t.signal == "y")
        .map(|t| t.value)
        .collect();
    assert_eq!(ys, vec![Some(6), Some(18)]);
    assert_eq!(sim.trace().iter().filter(|t| t.signal == "big").count(), 1);
}

#[test]
fn preemption_runs_urgent_task_inside_the_window() {
    // A slow low-priority task and an urgent one. The urgent event
    // arrives while the slow task runs; with preemption the urgent
    // response is traced before the slow task's emissions.
    let mut b = Cfsm::builder("slow");
    b.input_pure("go_slow");
    b.output_pure("slow_done");
    b.state_var("x", Type::uint(8), polis_expr::Value::Int(1));
    let s = b.ctrl_state("s");
    // Heavy arithmetic: divisions cost ~44 cycles each on Mcu8.
    b.transition(s, s)
        .when_present("go_slow")
        .assign(
            "x",
            Expr::var("x")
                .div(Expr::int(3))
                .add(Expr::var("x").div(Expr::int(5)))
                .add(Expr::var("x").div(Expr::int(7)))
                .add(Expr::int(1)),
        )
        .emit("slow_done")
        .done();
    let slow = b.build().unwrap();
    let urgent = relay("urgent", "go_fast", "fast_done");
    let net = Network::new("pair", vec![slow, urgent]).unwrap();

    let mk = |preemptive: bool| RtosConfig {
        policy: SchedulingPolicy::StaticPriority {
            priorities: vec![9, 1],
        },
        preemptive,
        ..RtosConfig::default()
    };
    // The urgent event lands inside the slow reaction's window.
    let stim = vec![Stimulus::pure(0, "go_slow"), Stimulus::pure(60, "go_fast")];

    let mut pre = Simulator::build(&net, mk(true));
    pre.run(&stim);
    assert!(pre.stats().preempting_reactions >= 1, "{:?}", pre.stats());
    let lat_pre = pre.worst_latency(&stim, "go_fast", "fast_done").unwrap();

    let mut nopre = Simulator::build(&net, mk(false));
    nopre.run(&stim);
    assert_eq!(nopre.stats().preempting_reactions, 0);
    let lat_no = nopre.worst_latency(&stim, "go_fast", "fast_done").unwrap();

    assert!(
        lat_pre <= lat_no,
        "preemptive latency {lat_pre} > non-preemptive {lat_no}"
    );
    // Behaviour is identical either way.
    let count = |sim: &Simulator, sig: &str| sim.trace().iter().filter(|t| t.signal == sig).count();
    for sig in ["slow_done", "fast_done"] {
        assert_eq!(count(&pre, sig), count(&nopre, sig), "{sig}");
    }
}

#[test]
fn hw_sw_snapshot_consistency_is_preserved() {
    // A hardware emission arriving while a software task runs must land
    // in its pending set like any other mid-reaction arrival.
    let mut b = Cfsm::builder("gate");
    b.input_pure("x");
    b.input_pure("hw_out");
    b.output_pure("seen_x");
    b.output_pure("both");
    let s = b.ctrl_state("s");
    b.transition(s, s)
        .when_present("x")
        .when_present("hw_out")
        .emit("both")
        .done();
    b.transition(s, s).when_present("x").emit("seen_x").done();
    let gate = b.build().unwrap();
    let hw = relay("hwrelay", "trigger", "hw_out");
    let net = Network::new("mix", vec![gate, hw]).unwrap();

    let config = RtosConfig {
        hardware: ["hwrelay".to_string()].into(),
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&net, config);
    // x starts the software reaction; the hardware relay fires mid-window.
    sim.run(&[Stimulus::pure(0, "x"), Stimulus::pure(50, "trigger")]);
    let sigs: Vec<&str> = sim
        .trace()
        .iter()
        .filter(|t| t.by == "gate")
        .map(|t| t.signal.as_str())
        .collect();
    assert_eq!(sigs, vec!["seen_x"], "trace: {:?}", sim.trace());
}

#[test]
fn chained_tasks_count_toward_totals() {
    let present: BTreeSet<(String, String)> = [("a".to_string(), "b".to_string())].into();
    let config = RtosConfig {
        chains: present,
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&chain3(), config);
    sim.run(&[Stimulus::pure(0, "in")]);
    // b ran chained; c ran scheduled.
    assert_eq!(sim.stats().chained_reactions, 1);
    let total: u64 = sim.stats().reactions.iter().sum();
    assert_eq!(total, 3);
}
