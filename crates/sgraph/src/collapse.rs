//! TEST-node collapsing (Section III-B3d).
//!
//! The paper experimented with merging *closed subgraphs* of TEST nodes —
//! regions whose incoming edges all share one parent — into single TEST
//! vertices whose predicate depends on several variables, generating either
//! an if-then-else cascade from the truth table or a Boolean network. The
//! reported outcome: "we never observed an improvement in the final running
//! time or size of the generated code. As a result, we do not currently use
//! TEST node collapsing." We reproduce the transformation (for the
//! ablation benchmark) in its truth-table form, collapsing single-entry
//! regions of binary TESTs that funnel into exactly two exits.

use crate::cond::Cond;
use crate::graph::{NodeId, SGraph, SNode, TestLabel};
use std::collections::HashMap;

/// Options for [`collapse`].
#[derive(Debug, Clone, Copy)]
pub struct CollapseOptions {
    /// Maximum number of distinct atoms in one collapsed predicate
    /// (truth-table enumeration is `2^max_atoms`).
    pub max_atoms: usize,
}

impl Default for CollapseOptions {
    fn default() -> CollapseOptions {
        CollapseOptions { max_atoms: 4 }
    }
}

/// Returns a copy of `g` with eligible TEST regions collapsed into
/// [`TestLabel::Compound`] vertices.
pub fn collapse(g: &SGraph, opts: CollapseOptions) -> SGraph {
    // Global parent counts decide single-entry membership.
    let mut parents: HashMap<NodeId, usize> = HashMap::new();
    for id in g.reachable() {
        match g.node(id) {
            SNode::Begin { next } | SNode::Assign { next, .. } => {
                *parents.entry(*next).or_default() += 1;
            }
            SNode::Test { children, .. } => {
                for &c in children {
                    *parents.entry(c).or_default() += 1;
                }
            }
            SNode::End => {}
        }
    }

    let mut out = SGraph::new(g.name().to_owned());
    let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
    let first = conv(g, &mut out, g.begin_next(), &parents, opts, &mut memo);
    out.set_begin(first);
    out.reduce()
}

fn conv(
    g: &SGraph,
    out: &mut SGraph,
    id: NodeId,
    parents: &HashMap<NodeId, usize>,
    opts: CollapseOptions,
    memo: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&m) = memo.get(&id) {
        return m;
    }
    let mapped = match g.node(id) {
        SNode::End => NodeId::END,
        SNode::Begin { .. } => unreachable!("BEGIN is not converted"),
        SNode::Assign { label, next } => {
            let n = conv(g, out, *next, parents, opts, memo);
            out.add_node(SNode::Assign {
                label: label.clone(),
                next: n,
            })
        }
        SNode::Test { label, children } => {
            if let Some((cond, exit0, exit1)) = try_region(g, id, parents, opts) {
                let c0 = conv(g, out, exit0, parents, opts, memo);
                let c1 = conv(g, out, exit1, parents, opts, memo);
                out.add_node(SNode::Test {
                    label: TestLabel::Compound { cond },
                    children: vec![c0, c1],
                })
            } else {
                let cs: Vec<NodeId> = children
                    .iter()
                    .map(|&c| conv(g, out, c, parents, opts, memo))
                    .collect();
                out.add_node(SNode::Test {
                    label: label.clone(),
                    children: cs,
                })
            }
        }
    };
    memo.insert(id, mapped);
    mapped
}

/// Attempts to identify a collapsible region rooted at `root`: a tree of
/// single-entry binary atomic TESTs funnelling into exactly two exits.
/// Returns the predicate selecting exit 1 and the two exits.
fn try_region(
    g: &SGraph,
    root: NodeId,
    parents: &HashMap<NodeId, usize>,
    opts: CollapseOptions,
) -> Option<(Cond, NodeId, NodeId)> {
    // Grow the region greedily from the root.
    let mut region = vec![root];
    let mut atoms: Vec<TestLabel> = Vec::new();
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        let SNode::Test { label, children } = g.node(id) else {
            continue;
        };
        if !atoms.contains(label) {
            if atoms.len() == opts.max_atoms {
                // Region would exceed the atom budget: exclude this node.
                if id == root {
                    return None;
                }
                region.retain(|&r| r != id);
                continue;
            }
            atoms.push(label.clone());
        }
        for &c in children {
            let eligible = matches!(
                g.node(c),
                SNode::Test {
                    label: TestLabel::Present { .. }
                        | TestLabel::TestExpr { .. }
                        | TestLabel::CtrlBit { .. },
                    ..
                }
            ) && parents.get(&c).copied().unwrap_or(0) == 1
                && !region.contains(&c);
            if eligible {
                region.push(c);
                frontier.push(c);
            }
        }
    }
    if region.len() < 2 || atoms.len() < 2 {
        return None; // nothing to factor
    }

    // Enumerate the truth table over the atoms and trace each combination
    // to its exit.
    let atom_index = |l: &TestLabel| atoms.iter().position(|a| a == l);
    let mut exits: Vec<NodeId> = Vec::new();
    let k = atoms.len();
    let mut table = vec![0usize; 1 << k];
    for bits in 0..1u32 << k {
        let mut cur = root;
        loop {
            if !region.contains(&cur) {
                break;
            }
            let SNode::Test { label, children } = g.node(cur) else {
                break;
            };
            let Some(ai) = atom_index(label) else { break };
            let v = bits >> ai & 1 == 1;
            cur = children[usize::from(v)];
        }
        let e = match exits.iter().position(|&x| x == cur) {
            Some(i) => i,
            None => {
                exits.push(cur);
                exits.len() - 1
            }
        };
        if exits.len() > 2 {
            return None; // only two-exit regions collapse to one Compound
        }
        table[bits as usize] = e;
    }
    if exits.len() != 2 {
        return None;
    }

    // Predicate: OR of minterms selecting exit 1.
    let mut cond = Cond::Const(false);
    for bits in 0..1u32 << k {
        if table[bits as usize] != 1 {
            continue;
        }
        let mut term = Cond::Const(true);
        for (ai, atom) in atoms.iter().enumerate() {
            let a = atom_cond(atom);
            term = term.and(if bits >> ai & 1 == 1 { a } else { a.not() });
        }
        cond = cond.or(term);
    }
    Some((cond, exits[0], exits[1]))
}

fn atom_cond(l: &TestLabel) -> Cond {
    match l {
        TestLabel::Present { input } => Cond::Present(*input),
        TestLabel::TestExpr { test } => Cond::Test(*test),
        TestLabel::CtrlBit { bit, width } => Cond::CtrlBit {
            bit: *bit,
            width: *width,
        },
        _ => unreachable!("only atomic labels are collected"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::eval::{execute, input_values};
    use polis_cfsm::{Cfsm, ReactiveFn};
    use polis_expr::{Expr, Type, Value};
    use std::collections::BTreeSet;

    /// Machine whose s-graph has a collapsible AND-shaped test region:
    /// fire only when both `a` and `b` are present.
    fn both_gate() -> Cfsm {
        let mut b = Cfsm::builder("both");
        b.input_pure("a");
        b.input_pure("b");
        b.output_pure("go");
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("a")
            .when_present("b")
            .emit("go")
            .done();
        b.build().unwrap()
    }

    #[test]
    fn collapse_merges_and_region() {
        let rf = ReactiveFn::build(&both_gate());
        let g = build(&rf).unwrap();
        let before = g.num_tests();
        let c = collapse(&g, CollapseOptions::default());
        let after = c.num_tests();
        assert!(after < before, "tests: {before} -> {after}");
        assert_eq!(after, 1);
        let has_compound = c.reachable().iter().any(|&id| {
            matches!(
                c.node(id),
                SNode::Test {
                    label: TestLabel::Compound { .. },
                    ..
                }
            )
        });
        assert!(has_compound);
    }

    #[test]
    fn collapse_preserves_semantics() {
        let m = both_gate();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = collapse(&g, CollapseOptions::default());
        let st = m.initial_state();
        let vals = input_values(&[]);
        for sigs in [vec![], vec!["a"], vec!["b"], vec!["a", "b"]] {
            let p: BTreeSet<String> = sigs.iter().map(|s| s.to_string()).collect();
            let want = execute(&m, &g, &p, &vals, &st).unwrap();
            let got = execute(&m, &c, &p, &vals, &st).unwrap();
            assert_eq!(got.fired, want.fired, "{sigs:?}");
            assert_eq!(got.emissions, want.emissions, "{sigs:?}");
            assert_eq!(got.next, want.next, "{sigs:?}");
        }
    }

    #[test]
    fn collapse_preserves_semantics_on_valued_machine() {
        let mut b = Cfsm::builder("mix");
        b.input_valued("x", Type::uint(4));
        b.input_pure("en");
        b.output_pure("hit");
        b.state_var("t", Type::uint(4), Value::Int(5));
        let s = b.ctrl_state("s");
        let ge = b.test("ge", Expr::var("x_value").ge(Expr::var("t")));
        b.transition(s, s)
            .when_present("x")
            .when_present("en")
            .when_test(ge)
            .emit("hit")
            .done();
        let m = b.build().unwrap();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let c = collapse(&g, CollapseOptions::default());
        let st = m.initial_state();
        for x in 0..8i64 {
            for sigs in [vec![], vec!["x"], vec!["en"], vec!["x", "en"]] {
                let p: BTreeSet<String> = sigs.iter().map(|s| s.to_string()).collect();
                let vals = input_values(&[("x", x)]);
                let want = execute(&m, &g, &p, &vals, &st).unwrap();
                let got = execute(&m, &c, &p, &vals, &st).unwrap();
                assert_eq!(got.fired, want.fired, "x={x} {sigs:?}");
                assert_eq!(got.next, want.next, "x={x} {sigs:?}");
            }
        }
    }

    #[test]
    fn atom_budget_respected() {
        let rf = ReactiveFn::build(&both_gate());
        let g = build(&rf).unwrap();
        // max_atoms = 1 forbids any multi-atom collapse: graph unchanged
        // in test count.
        let c = collapse(&g, CollapseOptions { max_atoms: 1 });
        assert_eq!(c.num_tests(), g.num_tests());
    }
}
