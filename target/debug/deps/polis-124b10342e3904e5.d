/root/repo/target/debug/deps/polis-124b10342e3904e5.d: src/bin/polis.rs

/root/repo/target/debug/deps/libpolis-124b10342e3904e5.rmeta: src/bin/polis.rs

src/bin/polis.rs:
