/root/repo/target/debug/deps/polis_cfsm-f5574dd64ce2151b.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_cfsm-f5574dd64ce2151b.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs Cargo.toml

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
