//! Networks of CFSMs connected by broadcast events.
//!
//! Connection is by signal name: an event emitted by any machine is
//! delivered to every machine that declares an input of the same name, each
//! through its own one-place buffer (Section II-D). Signals nobody emits are
//! *primary inputs* (driven by the environment or by hardware CFSMs);
//! every emitted signal is also observable as a primary output.

use crate::machine::Cfsm;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A named collection of CFSMs with name-based broadcast connectivity.
///
/// # Examples
///
/// ```
/// use polis_cfsm::{Cfsm, Network};
/// use polis_expr::{Expr, Type, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Cfsm::builder("producer");
/// b.input_pure("tick");
/// b.output_pure("data");
/// let s = b.ctrl_state("s");
/// b.transition(s, s).when_present("tick").emit("data").done();
/// let producer = b.build()?;
///
/// let mut b = Cfsm::builder("consumer");
/// b.input_pure("data");
/// b.output_pure("done");
/// let s = b.ctrl_state("s");
/// b.transition(s, s).when_present("data").emit("done").done();
/// let consumer = b.build()?;
///
/// let net = Network::new("pair", vec![producer, consumer])?;
/// assert_eq!(net.primary_inputs(), vec!["tick".to_string()]);
/// assert!(net.internal_signals().contains(&"data".to_string()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    cfsms: Vec<Cfsm>,
}

impl Network {
    /// Builds a network and validates its connectivity.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::DuplicateMachine`] if two machines share a name;
    /// * [`NetworkError::SignalTypeMismatch`] if two declarations of the
    ///   same signal disagree on valued-ness or type;
    /// * [`NetworkError::MultipleDrivers`] if two machines emit the same
    ///   signal (single-driver discipline keeps event semantics analyzable).
    pub fn new(name: impl Into<String>, cfsms: Vec<Cfsm>) -> Result<Network, NetworkError> {
        let net = Network {
            name: name.into(),
            cfsms,
        };
        let mut names = BTreeSet::new();
        for m in &net.cfsms {
            if !names.insert(m.name().to_owned()) {
                return Err(NetworkError::DuplicateMachine {
                    name: m.name().to_owned(),
                });
            }
        }
        // Signal declarations must agree.
        let mut decl: BTreeMap<String, crate::Signal> = BTreeMap::new();
        for m in &net.cfsms {
            for s in m.inputs().iter().chain(m.outputs()) {
                match decl.get(s.name()) {
                    None => {
                        decl.insert(s.name().to_owned(), s.clone());
                    }
                    Some(prev) if prev.value_type() == s.value_type() => {}
                    Some(_) => {
                        return Err(NetworkError::SignalTypeMismatch {
                            signal: s.name().to_owned(),
                        })
                    }
                }
            }
        }
        // Single driver per signal.
        let mut driver: BTreeMap<&str, &str> = BTreeMap::new();
        for m in &net.cfsms {
            for s in m.outputs() {
                if let Some(other) = driver.insert(s.name(), m.name()) {
                    return Err(NetworkError::MultipleDrivers {
                        signal: s.name().to_owned(),
                        first: other.to_owned(),
                        second: m.name().to_owned(),
                    });
                }
            }
        }
        Ok(net)
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member machines.
    pub fn cfsms(&self) -> &[Cfsm] {
        &self.cfsms
    }

    /// Index of the machine named `name`.
    pub fn machine_index(&self, name: &str) -> Option<usize> {
        self.cfsms.iter().position(|m| m.name() == name)
    }

    /// The machine that emits `signal`, if any.
    pub fn driver_of(&self, signal: &str) -> Option<usize> {
        self.cfsms
            .iter()
            .position(|m| m.output_index(signal).is_some())
    }

    /// The machines with an input named `signal`.
    pub fn consumers_of(&self, signal: &str) -> Vec<usize> {
        self.cfsms
            .iter()
            .enumerate()
            .filter(|(_, m)| m.input_index(signal).is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Signals consumed by some machine but emitted by none: driven by the
    /// environment (or by hardware CFSMs in a partitioned design).
    pub fn primary_inputs(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        for m in &self.cfsms {
            for s in m.inputs() {
                if self.driver_of(s.name()).is_none() {
                    out.insert(s.name().to_owned());
                }
            }
        }
        out.into_iter().collect()
    }

    /// Signals both emitted and consumed inside the network.
    pub fn internal_signals(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        for m in &self.cfsms {
            for s in m.outputs() {
                if !self.consumers_of(s.name()).is_empty() {
                    out.insert(s.name().to_owned());
                }
            }
        }
        out.into_iter().collect()
    }

    /// All signals emitted by some machine (observable outputs).
    pub fn emitted_signals(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        for m in &self.cfsms {
            for s in m.outputs() {
                out.insert(s.name().to_owned());
            }
        }
        out.into_iter().collect()
    }

    /// Every one-place event buffer of the network, in deterministic
    /// (consumer, input-index) order.
    ///
    /// One buffer exists per (consumer machine, input signal) pair
    /// (Section II-D: each receiver owns a private one-place buffer even
    /// though emission is broadcast). `driver` is the emitting machine, or
    /// `None` for primary inputs driven by the environment.
    pub fn buffers(&self) -> Vec<BufferRef> {
        let mut out = Vec::new();
        for (ci, m) in self.cfsms.iter().enumerate() {
            for (ii, s) in m.inputs().iter().enumerate() {
                out.push(BufferRef {
                    consumer: ci,
                    input: ii,
                    signal: s.name().to_owned(),
                    driver: self.driver_of(s.name()),
                });
            }
        }
        out
    }

    /// Machines in topological order of internal-signal flow (emitters
    /// before consumers), or `None` if the communication graph is cyclic.
    ///
    /// Used by [`crate::compose`], which requires acyclic internal
    /// communication (the synchronous-composition analogue of Esterel's
    /// causality requirement).
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.cfsms.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for sig in self.internal_signals() {
            let d = self.driver_of(&sig).expect("internal signal has driver");
            for c in self.consumers_of(&sig) {
                if c != d && !succs[d].contains(&c) {
                    succs[d].push(c);
                    indeg[c] += 1;
                } else if c == d {
                    return None; // self-loop
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            out.push(i);
            for &j in &succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        (out.len() == n).then_some(out)
    }
}

/// One one-place event buffer of a network: the receiving side of a
/// (consumer, input signal) pair. See [`Network::buffers`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferRef {
    /// Index of the consuming machine.
    pub consumer: usize,
    /// Index into the consumer's input list.
    pub input: usize,
    /// The signal name.
    pub signal: String,
    /// Index of the emitting machine, or `None` for primary inputs.
    pub driver: Option<usize>,
}

/// Validation failure while building a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Two machines share a name.
    DuplicateMachine {
        /// The duplicated machine name.
        name: String,
    },
    /// Two declarations of one signal disagree on type.
    SignalTypeMismatch {
        /// The signal name.
        signal: String,
    },
    /// Two machines emit the same signal.
    MultipleDrivers {
        /// The signal name.
        signal: String,
        /// First driver.
        first: String,
        /// Second driver.
        second: String,
    },
    /// The operation requires acyclic internal communication.
    CyclicCommunication,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateMachine { name } => {
                write!(f, "duplicate machine name `{name}`")
            }
            NetworkError::SignalTypeMismatch { signal } => {
                write!(f, "conflicting type declarations for signal `{signal}`")
            }
            NetworkError::MultipleDrivers {
                signal,
                first,
                second,
            } => write!(
                f,
                "signal `{signal}` emitted by both `{first}` and `{second}`"
            ),
            NetworkError::CyclicCommunication => {
                write!(f, "internal communication graph is cyclic")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_expr::Expr;

    fn relay(name: &str, input: &str, output: &str) -> Cfsm {
        let mut b = Cfsm::builder(name);
        b.input_pure(input);
        b.output_pure(output);
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present(input).emit(output).done();
        b.build().unwrap()
    }

    #[test]
    fn chain_topology() {
        let net = Network::new(
            "chain",
            vec![
                relay("a", "in", "m1"),
                relay("b", "m1", "m2"),
                relay("c", "m2", "out"),
            ],
        )
        .unwrap();
        assert_eq!(net.primary_inputs(), vec!["in".to_string()]);
        assert_eq!(
            net.internal_signals(),
            vec!["m1".to_string(), "m2".to_string()]
        );
        assert_eq!(
            net.emitted_signals(),
            vec!["m1".to_string(), "m2".to_string(), "out".to_string()]
        );
        assert_eq!(net.driver_of("m1"), Some(0));
        assert_eq!(net.consumers_of("m1"), vec![1]);
        let topo = net.topo_order().unwrap();
        assert_eq!(topo.len(), 3);
        let pos = |i: usize| topo.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn buffers_enumerate_every_consumer_input() {
        let net = Network::new(
            "chain",
            vec![relay("a", "in", "m1"), relay("b", "m1", "m2")],
        )
        .unwrap();
        let bufs = net.buffers();
        assert_eq!(
            bufs,
            vec![
                BufferRef {
                    consumer: 0,
                    input: 0,
                    signal: "in".to_owned(),
                    driver: None,
                },
                BufferRef {
                    consumer: 1,
                    input: 0,
                    signal: "m1".to_owned(),
                    driver: Some(0),
                },
            ]
        );
    }

    #[test]
    fn cycle_detected() {
        let net = Network::new("cycle", vec![relay("a", "x", "y"), relay("b", "y", "x")]).unwrap();
        assert_eq!(net.topo_order(), None);
    }

    #[test]
    fn machine_cannot_consume_its_own_output() {
        // A CFSM that inputs its own output signal is rejected at machine
        // build time (the value variable `x_value` would be ambiguous), so
        // the only communication cycles a network can contain span two or
        // more machines.
        let mut b = Cfsm::builder("selfloop");
        b.input_pure("x");
        b.output_pure("x");
        b.ctrl_state("s");
        assert!(matches!(
            b.build(),
            Err(crate::CfsmError::DuplicateName { .. })
        ));
    }

    #[test]
    fn duplicate_machine_rejected() {
        let err =
            Network::new("dup", vec![relay("a", "x", "y"), relay("a", "p", "q")]).unwrap_err();
        assert!(matches!(err, NetworkError::DuplicateMachine { .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let err =
            Network::new("multi", vec![relay("a", "x", "z"), relay("b", "y", "z")]).unwrap_err();
        assert!(matches!(err, NetworkError::MultipleDrivers { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        use polis_expr::{Type, Value};
        let mut b = Cfsm::builder("valued");
        b.input_pure("go");
        b.output_valued("z", Type::uint(8));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .emit_value("z", Expr::int(1))
            .done();
        let valued = b.build().unwrap();

        let mut b = Cfsm::builder("pureview");
        b.input_pure("z");
        b.state_var("n", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("z")
            .assign("n", Expr::var("n").add(Expr::int(1)))
            .done();
        let pureview = b.build().unwrap();

        let err = Network::new("mismatch", vec![valued, pureview]).unwrap_err();
        assert!(matches!(err, NetworkError::SignalTypeMismatch { .. }));
    }
}
