//! Exports the built-in evaluation workloads as textual specification
//! files under `examples/specs/`, so the `polis` CLI (and CI) can run on
//! the exact networks the library tests use. Each file carries the
//! workload's property suite (`workloads::property_suite`), rendered
//! canonically through the parser and printer.
//!
//! Run with `cargo run --example export_specs`.

use polis::cfsm::Network;
use polis::core::workloads;
use polis::lang::{emit_spec_source, parse_properties};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let simple = Network::new("simple", vec![workloads::simple()])?;
    let nets = [
        simple,
        workloads::dashboard(),
        workloads::shock_absorber(),
        workloads::seat_belt(),
    ];
    let dir = Path::new("examples/specs");
    std::fs::create_dir_all(dir)?;
    for net in &nets {
        let props = parse_properties(net, workloads::property_suite(net.name()))?;
        let path = dir.join(format!("{}.pol", net.name()));
        std::fs::write(&path, emit_spec_source(net, &props))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
