/root/repo/target/debug/deps/polis-0f987d9ddfe48052.d: src/lib.rs

/root/repo/target/debug/deps/polis-0f987d9ddfe48052: src/lib.rs

src/lib.rs:
