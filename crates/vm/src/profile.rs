//! Target cost profiles, the assembler, and object code.
//!
//! The assembler performs branch relaxation: branches start in their short
//! encoding and are widened until every displacement fits, exactly the
//! effect the paper exploits when it notes that implementing BDDs "directly
//! in executable code" can use "the efficient encoding of the BDD branching
//! structure provided by the instruction set encoding of the target
//! processor (often using fewer bits of address for near jumps)".

use crate::inst::{Inst, VmProgram};
use polis_expr::BinOp;

/// A target cost profile (see the crate docs for the substitution
/// rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// 8-bit accumulator-style micro-controller (68HC11-like): 1–5 byte
    /// instructions, ±127-byte short branches, slow multiply/divide.
    Mcu8,
    /// 32-bit RISC (R3000-like): fixed 4-byte instructions, single-cycle
    /// ALU, branch-taken penalty.
    Risc32,
}

/// Size and timing of one encoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstCost {
    /// Encoded size in bytes.
    pub bytes: u32,
    /// Base execution cycles.
    pub cycles: u32,
    /// Extra cycles when a conditional branch is taken.
    pub taken_extra: u32,
}

/// Assembled object code: per-instruction encodings and addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectCode {
    costs: Vec<InstCost>,
    addrs: Vec<u32>,
    total_bytes: u32,
    profile: Profile,
}

impl ObjectCode {
    /// Total code size in bytes (the paper's ROM cost).
    pub fn size_bytes(&self) -> u32 {
        self.total_bytes
    }

    /// Cost of instruction `i`.
    pub fn cost(&self, i: usize) -> InstCost {
        self.costs[i]
    }

    /// Address of instruction `i`.
    pub fn addr(&self, i: usize) -> u32 {
        self.addrs[i]
    }

    /// The profile this code was assembled for.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Number of encoded instructions.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// `true` when the routine is empty (never for compiled programs,
    /// which always contain at least `Return`).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

/// Assembles a routine under a cost profile, relaxing branches until every
/// displacement fits its encoding.
pub fn assemble(prog: &VmProgram, profile: Profile) -> ObjectCode {
    let insts = prog.insts();
    let mut long = vec![false; insts.len()];
    loop {
        // Lay out with the current long/short decisions.
        let mut addrs = Vec::with_capacity(insts.len());
        let mut costs = Vec::with_capacity(insts.len());
        let mut at = 0u32;
        for (i, inst) in insts.iter().enumerate() {
            let c = cost_of(inst, profile, long[i]);
            addrs.push(at);
            costs.push(c);
            at += c.bytes;
        }
        // Check displacements.
        let mut changed = false;
        for (i, inst) in insts.iter().enumerate() {
            if long[i] {
                continue;
            }
            let target = match inst {
                Inst::Branch { target, .. } => *target,
                Inst::Jump(target) => *target,
                _ => continue,
            };
            let from = addrs[i] as i64 + costs[i].bytes as i64;
            let disp = addrs[target] as i64 - from;
            let fits = match profile {
                Profile::Mcu8 => (-128..=127).contains(&disp),
                Profile::Risc32 => (-(1 << 17)..(1 << 17)).contains(&disp),
            };
            if !fits {
                long[i] = true;
                changed = true;
            }
        }
        if !changed {
            let total_bytes = at;
            return ObjectCode {
                costs,
                addrs,
                total_bytes,
                profile,
            };
        }
    }
}

fn cost_of(inst: &Inst, profile: Profile, long: bool) -> InstCost {
    match profile {
        Profile::Mcu8 => mcu8_cost(inst, long),
        Profile::Risc32 => risc32_cost(inst, long),
    }
}

fn mcu8_cost(inst: &Inst, long: bool) -> InstCost {
    let c = |bytes, cycles| InstCost {
        bytes,
        cycles,
        taken_extra: 0,
    };
    match inst {
        Inst::PushImm(v) => {
            if (-128..=127).contains(v) {
                c(2, 2)
            } else {
                c(3, 3)
            }
        }
        Inst::PushVar(slot) => {
            if *slot < 32 {
                c(2, 3) // direct page
            } else {
                c(3, 4) // extended addressing
            }
        }
        Inst::StoreVar(slot) => {
            if *slot < 32 {
                c(2, 4)
            } else {
                c(3, 5)
            }
        }
        Inst::Unary(_) => c(2, 3),
        Inst::Binary(op) => match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => c(3, 6),
            BinOp::Mul => c(3, 13),
            BinOp::Div | BinOp::Rem => c(4, 44),
            BinOp::Min | BinOp::Max => c(5, 9),
            _ => c(4, 7), // relational: compare + set
        },
        Inst::Branch { .. } => {
            if long {
                // Bcc over a JMP extension.
                InstCost {
                    bytes: 5,
                    cycles: 6,
                    taken_extra: 0,
                }
            } else {
                InstCost {
                    bytes: 2,
                    cycles: 3,
                    taken_extra: 0,
                }
            }
        }
        Inst::Jump(_) => {
            if long {
                c(3, 3)
            } else {
                c(2, 3) // BRA
            }
        }
        Inst::JumpTable(targets) => c(5 + 2 * targets.len() as u32, 9),
        Inst::PushCtrlBit { .. } => c(3, 4),
        Inst::SetCtrlBits { bits, .. } => c(2 + bits.len() as u32, 3 + 2 * bits.len() as u32),
        Inst::StoreCtrlBit { .. } => c(4, 6),
        Inst::Detect(_) => c(3, 13),
        Inst::EmitPure(_) => c(3, 15),
        Inst::EmitValued(_) => c(3, 19),
        Inst::Consume => c(3, 9),
        Inst::Return => c(1, 5),
    }
}

fn risc32_cost(inst: &Inst, _long: bool) -> InstCost {
    let c = |bytes, cycles| InstCost {
        bytes,
        cycles,
        taken_extra: 0,
    };
    match inst {
        Inst::PushImm(v) => {
            if (-32768..=32767).contains(v) {
                c(4, 1)
            } else {
                c(8, 2) // lui + ori
            }
        }
        Inst::PushVar(_) => c(4, 2),
        Inst::StoreVar(_) => c(4, 2),
        Inst::Unary(_) => c(4, 1),
        Inst::Binary(op) => match op {
            BinOp::Mul => c(4, 4),
            BinOp::Div | BinOp::Rem => c(4, 16),
            BinOp::Min | BinOp::Max => c(8, 2),
            _ => c(4, 1),
        },
        Inst::Branch { .. } => InstCost {
            bytes: 4,
            cycles: 1,
            taken_extra: 1,
        },
        Inst::Jump(_) => c(4, 1),
        Inst::JumpTable(targets) => c(4 * (3 + targets.len() as u32), 6),
        Inst::PushCtrlBit { .. } => c(8, 2),
        Inst::SetCtrlBits { bits, .. } => c(4 * bits.len().max(1) as u32, bits.len() as u32),
        Inst::StoreCtrlBit { .. } => c(12, 3),
        Inst::Detect(_) => c(8, 10),
        Inst::EmitPure(_) => c(8, 12),
        Inst::EmitValued(_) => c(8, 14),
        Inst::Consume => c(8, 8),
        Inst::Return => c(4, 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{SlotInfo, SlotKind};
    use polis_expr::Type;

    fn program(insts: Vec<Inst>) -> VmProgram {
        VmProgram {
            name: "t".into(),
            insts,
            slots: vec![SlotInfo {
                name: "x".into(),
                ty: Type::uint(8),
                kind: SlotKind::State,
                init: 0,
            }],
            num_inputs: 1,
            num_outputs: 1,
            out_types: vec![None],
        }
    }

    #[test]
    fn layout_is_monotone() {
        let p = program(vec![
            Inst::Detect(0),
            Inst::Branch {
                when: true,
                target: 3,
            },
            Inst::Return,
            Inst::EmitPure(0),
            Inst::Return,
        ]);
        let o = assemble(&p, Profile::Mcu8);
        for i in 1..o.len() {
            assert!(o.addr(i) > o.addr(i - 1));
        }
        assert_eq!(
            o.size_bytes(),
            (0..o.len()).map(|i| o.cost(i).bytes).sum::<u32>()
        );
    }

    #[test]
    fn risc_instructions_are_word_multiples() {
        let p = program(vec![
            Inst::PushImm(5),
            Inst::PushVar(0),
            Inst::Binary(BinOp::Add),
            Inst::StoreVar(0),
            Inst::Return,
        ]);
        let o = assemble(&p, Profile::Risc32);
        for i in 0..o.len() {
            assert_eq!(o.cost(i).bytes % 4, 0);
        }
    }

    #[test]
    fn branch_relaxation_widens_far_branches() {
        // A branch over ~200 bytes of filler must widen on Mcu8.
        let mut insts = vec![Inst::Detect(0)];
        let filler = 70; // 70 × 3-byte compares ≈ 210 bytes
        insts.push(Inst::Branch {
            when: true,
            target: 2 + filler,
        });
        for _ in 0..filler {
            insts.push(Inst::Binary(BinOp::Add));
        }
        insts.push(Inst::Return);
        let near = {
            let p = program(vec![
                Inst::Detect(0),
                Inst::Branch {
                    when: true,
                    target: 2,
                },
                Inst::Return,
            ]);
            assemble(&p, Profile::Mcu8).cost(1).bytes
        };
        let far = assemble(&program(insts), Profile::Mcu8).cost(1).bytes;
        assert!(far > near, "far branch {far} should exceed near {near}");
    }

    #[test]
    fn immediate_and_addressing_sizes() {
        let p = program(vec![Inst::PushImm(5), Inst::PushImm(5000), Inst::Return]);
        let o = assemble(&p, Profile::Mcu8);
        assert!(o.cost(1).bytes > o.cost(0).bytes);

        let p = program(vec![Inst::PushVar(0), Inst::PushVar(40), Inst::Return]);
        let o = assemble(&p, Profile::Mcu8);
        assert!(o.cost(1).bytes > o.cost(0).bytes);
    }

    #[test]
    fn division_is_expensive_on_mcu8() {
        let div = mcu8_cost(&Inst::Binary(BinOp::Div), false);
        let add = mcu8_cost(&Inst::Binary(BinOp::Add), false);
        assert!(div.cycles > 5 * add.cycles);
    }
}
