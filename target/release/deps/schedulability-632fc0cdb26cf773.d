/root/repo/target/release/deps/schedulability-632fc0cdb26cf773.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/release/deps/schedulability-632fc0cdb26cf773: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
