/root/repo/target/debug/deps/polis_sgraph-b1766d15c9e7441e.d: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_sgraph-b1766d15c9e7441e.rmeta: crates/sgraph/src/lib.rs crates/sgraph/src/analysis.rs crates/sgraph/src/builder.rs crates/sgraph/src/chain.rs crates/sgraph/src/collapse.rs crates/sgraph/src/cond.rs crates/sgraph/src/eval.rs crates/sgraph/src/graph.rs Cargo.toml

crates/sgraph/src/lib.rs:
crates/sgraph/src/analysis.rs:
crates/sgraph/src/builder.rs:
crates/sgraph/src/chain.rs:
crates/sgraph/src/collapse.rs:
crates/sgraph/src/cond.rs:
crates/sgraph/src/eval.rs:
crates/sgraph/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
