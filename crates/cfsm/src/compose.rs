//! Synchronous composition of a CFSM network into a single CFSM.
//!
//! This implements the "single FSM" style of the Esterel v3 compiler used as
//! the `ESTEREL` baseline in Table III: the whole network becomes one
//! machine whose control state is the tuple of member states, with internal
//! communication compiled away. As the paper notes, this is fast per
//! reaction (no internal events, no scheduling) at the expense of code size,
//! which can grow with the product of the member state spaces.
//!
//! Semantics: one product reaction is one *synchronous tick*. Members react
//! simultaneously; an internal event emitted in a tick is visible to its
//! consumers **in the same tick** (Esterel's instantaneous broadcast), which
//! requires the internal communication graph to be acyclic (the analogue of
//! Esterel's causality requirement — see
//! [`Network::topo_order`]). An internal valued event also updates a
//! product-level buffer variable so consumers that sample it in a *later*
//! tick see the last emitted value, matching the CFSM one-place buffer.
//!
//! Note this differs from the asynchronous GALS execution of the same
//! network (Section II-D): composition trades nondeterministic interleaving
//! for the synchronous hypothesis, exactly the trade-off the paper discusses
//! in "Synchrony and Asynchrony".

use crate::machine::{Action, Cfsm, CfsmError, Guard, Transition};
use crate::network::{Network, NetworkError};
use crate::signal::value_var_name;
use polis_expr::{Expr, Value};
use std::collections::{BTreeMap, HashMap};

/// Hard cap on generated product transitions; composition fails with
/// [`ComposeError::TooLarge`] beyond this.
const MAX_PRODUCT_TRANSITIONS: usize = 250_000;

/// Failure during [`compose`].
#[derive(Debug)]
pub enum ComposeError {
    /// The network's internal communication graph is cyclic.
    Network(NetworkError),
    /// The product machine is invalid (indicates a bug in composition).
    Machine(CfsmError),
    /// The product exceeded an internal transition cap (250 000) — the
    /// state blow-up the paper warns about, beyond what we materialize.
    TooLarge {
        /// Transitions generated before giving up.
        generated: usize,
    },
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::Network(e) => write!(f, "composition: {e}"),
            ComposeError::Machine(e) => write!(f, "composition produced invalid machine: {e}"),
            ComposeError::TooLarge { generated } => {
                write!(f, "product machine too large (> {generated} transitions)")
            }
        }
    }
}

impl std::error::Error for ComposeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComposeError::Network(e) => Some(e),
            ComposeError::Machine(e) => Some(e),
            ComposeError::TooLarge { .. } => None,
        }
    }
}

impl From<NetworkError> for ComposeError {
    fn from(e: NetworkError) -> ComposeError {
        ComposeError::Network(e)
    }
}

impl From<CfsmError> for ComposeError {
    fn from(e: CfsmError) -> ComposeError {
        ComposeError::Machine(e)
    }
}

/// A product action before instantiation.
#[derive(Debug, Clone)]
enum PAction {
    Emit { signal: String, value: Option<Expr> },
    Assign { var: String, value: Expr },
}

/// A product transition before instantiation.
#[derive(Debug)]
struct PTransition {
    from: usize,
    to: usize,
    guard: Guard,
    actions: Vec<PAction>,
}

/// Composes the whole network into one CFSM (the Esterel-v3-style baseline).
///
/// # Errors
///
/// * [`ComposeError::Network`] when internal communication is cyclic;
/// * [`ComposeError::TooLarge`] when the product transition count explodes
///   past an internal safety cap.
pub fn compose(net: &Network) -> Result<Cfsm, ComposeError> {
    compose_named(net, &format!("{}_product", net.name()))
}

/// Like [`compose`] with an explicit name for the product machine.
pub fn compose_named(net: &Network, name: &str) -> Result<Cfsm, ComposeError> {
    let topo = net.topo_order().ok_or(NetworkError::CyclicCommunication)?;
    let machines = net.cfsms();
    let internal: Vec<String> = net.internal_signals();
    let is_internal = |sig: &str| internal.iter().any(|s| s == sig);

    // External input signals, deduplicated, with declared types.
    let mut ext_inputs: BTreeMap<String, Option<polis_expr::Type>> = BTreeMap::new();
    for m in machines {
        for s in m.inputs() {
            if !is_internal(s.name()) {
                ext_inputs.insert(s.name().to_owned(), s.value_type());
            }
        }
    }
    let ext_input_names: Vec<String> = ext_inputs.keys().cloned().collect();

    // Variable renaming: member state var `v` of machine `m` -> `m__v`.
    let rename = |m: &Cfsm, e: &Expr| -> Expr {
        e.rename_vars(&|n| {
            if m.state_var_index(n).is_some() {
                format!("{}__{n}", m.name())
            } else {
                n.to_owned()
            }
        })
    };

    // Per-tuple enumeration state.
    let mut tuples: Vec<Vec<usize>> = Vec::new();
    let mut tuple_index: HashMap<Vec<usize>, usize> = HashMap::new();
    let init: Vec<usize> = machines.iter().map(|m| m.init_state()).collect();
    tuple_index.insert(init.clone(), 0);
    tuples.push(init);

    let mut transitions: Vec<PTransition> = Vec::new();
    let mut tests: Vec<(String, Expr)> = Vec::new();
    let mut test_index: HashMap<Expr, usize> = HashMap::new();

    let mut frontier = vec![0usize];
    while let Some(ti) = frontier.pop() {
        let tuple = tuples[ti].clone();
        // Enumerate member choices in topological order so internal
        // presence and values are known when consumers are processed.
        let mut ctx = ComboCtx {
            net,
            topo: &topo,
            tuple: &tuple,
            ext_input_names: &ext_input_names,
            rename: &rename,
            tests: &mut tests,
            test_index: &mut test_index,
            out: &mut Vec::new(),
        };
        enumerate(&mut ctx, 0, Combo::default());
        let combos = std::mem::take(ctx.out);
        for combo in combos {
            if combo.all_default {
                continue;
            }
            let mut to_tuple = tuple.clone();
            for (mi, st) in &combo.next {
                to_tuple[*mi] = *st;
            }
            let to = *tuple_index.entry(to_tuple.clone()).or_insert_with(|| {
                tuples.push(to_tuple);
                frontier.push(tuples.len() - 1);
                tuples.len() - 1
            });
            transitions.push(PTransition {
                from: ti,
                to,
                guard: combo.guard,
                actions: combo.actions,
            });
            if transitions.len() > MAX_PRODUCT_TRANSITIONS {
                return Err(ComposeError::TooLarge {
                    generated: transitions.len(),
                });
            }
        }
    }

    // Instantiate the product CFSM.
    let mut b = Cfsm::builder(name);
    for n in &ext_input_names {
        match ext_inputs[n] {
            Some(ty) => b.input_valued(n.clone(), ty),
            None => b.input_pure(n.clone()),
        };
    }
    let mut emitted: Vec<&crate::Signal> = Vec::new();
    for m in machines {
        for s in m.outputs() {
            if !emitted.iter().any(|e| e.name() == s.name()) {
                emitted.push(s);
                match s.value_type() {
                    Some(ty) => b.output_valued(s.name(), ty),
                    None => b.output_pure(s.name()),
                };
            }
        }
    }
    for m in machines {
        for v in m.state_vars() {
            b.state_var(format!("{}__{}", m.name(), v.name), v.ty, v.init);
        }
    }
    // Buffer variables for valued internal signals (one-place buffers).
    for sig in &internal {
        let d = net.driver_of(sig).expect("driver");
        let s = &machines[d].outputs()[machines[d].output_index(sig).unwrap()];
        if let Some(ty) = s.value_type() {
            b.state_var(buf_var_name(sig), ty, Value::Int(0));
        }
    }
    let state_ids: Vec<crate::machine::StateId> = tuples
        .iter()
        .map(|t| {
            let label: Vec<&str> = t
                .iter()
                .enumerate()
                .map(|(mi, &s)| machines[mi].states()[s].as_str())
                .collect();
            b.ctrl_state(label.join("*"))
        })
        .collect();
    let test_ids: Vec<crate::machine::TestId> = tests
        .iter()
        .map(|(n, e)| b.test(n.clone(), e.clone()))
        .collect();
    for pt in transitions {
        let guard = map_guard_tests(&pt.guard, &test_ids);
        let mut tb = b
            .transition(state_ids[pt.from], state_ids[pt.to])
            .when(guard);
        for a in pt.actions {
            tb = match a {
                PAction::Emit {
                    signal,
                    value: None,
                } => tb.emit(&signal),
                PAction::Emit {
                    signal,
                    value: Some(e),
                } => tb.emit_value(&signal, e),
                PAction::Assign { var, value } => tb.assign(&var, value),
            };
        }
        tb.done();
    }
    Ok(b.build()?)
}

/// Replaces a subset of machines by their synchronous product, leaving the
/// rest of the network untouched. Used for the granularity experiment
/// (Section I-H: growing the synchronous islands).
///
/// # Errors
///
/// Propagates [`ComposeError`]; also fails if `names` contains an unknown
/// machine.
pub fn compose_subset(net: &Network, names: &[&str]) -> Result<Network, ComposeError> {
    let mut selected = Vec::new();
    let mut rest = Vec::new();
    for m in net.cfsms() {
        if names.contains(&m.name()) {
            selected.push(m.clone());
        } else {
            rest.push(m.clone());
        }
    }
    assert_eq!(selected.len(), names.len(), "unknown machine in subset");
    let sub = Network::new(format!("{}_sub", net.name()), selected)?;
    let product = compose_named(&sub, &names.join("_"))?;
    let mut all = vec![product];
    all.extend(rest);
    Ok(Network::new(net.name().to_owned(), all)?)
}

fn buf_var_name(sig: &str) -> String {
    format!("{sig}__buf")
}

/// One member-choice combination under construction.
#[derive(Debug, Default, Clone)]
struct Combo {
    guard: Guard,
    actions: Vec<PAction>,
    next: Vec<(usize, usize)>,
    /// Internal signals emitted in this tick, with their value expressions.
    emitted: BTreeMap<String, Option<Expr>>,
    all_default: bool,
}

struct ComboCtx<'a> {
    net: &'a Network,
    topo: &'a [usize],
    tuple: &'a [usize],
    ext_input_names: &'a [String],
    rename: &'a dyn Fn(&Cfsm, &Expr) -> Expr,
    tests: &'a mut Vec<(String, Expr)>,
    test_index: &'a mut HashMap<Expr, usize>,
    out: &'a mut Vec<Combo>,
}

fn enumerate(ctx: &mut ComboCtx<'_>, pos: usize, combo: Combo) {
    if pos == ctx.topo.len() {
        let mut done = combo;
        done.all_default = done.next.is_empty();
        done.guard = simplify(done.guard);
        if done.guard != Guard::False {
            ctx.out.push(done);
        }
        return;
    }
    let mi = ctx.topo[pos];
    let m = &ctx.net.cfsms()[mi];
    let state = ctx.tuple[mi];
    let from_here: Vec<&Transition> = m.transitions().iter().filter(|t| t.from == state).collect();

    // Option: take transition k (earlier ones must not match).
    for (k, t) in from_here.iter().enumerate() {
        let mut c = combo.clone();
        let mut g = translate_guard(ctx, m, &t.guard, &combo);
        for earlier in &from_here[..k] {
            let ge = translate_guard(ctx, m, &earlier.guard, &combo);
            g = g.and(ge.not());
        }
        g = simplify(g);
        if g == Guard::False {
            continue;
        }
        c.guard = simplify(combo.guard.clone().and(g));
        if c.guard == Guard::False {
            continue;
        }
        c.next.push((mi, t.to));
        for &ai in &t.actions {
            match &m.actions()[ai] {
                Action::Emit { signal, value } => {
                    let sig = m.outputs()[*signal].name().to_owned();
                    let val = value
                        .as_ref()
                        .map(|e| substitute_internal_values(ctx, m, &(ctx.rename)(m, e), &combo));
                    c.actions.push(PAction::Emit {
                        signal: sig.clone(),
                        value: val.clone(),
                    });
                    if ctx.net.internal_signals().contains(&sig) {
                        if let Some(v) = &val {
                            c.actions.push(PAction::Assign {
                                var: buf_var_name(&sig),
                                value: v.clone(),
                            });
                        }
                        c.emitted.insert(sig, val);
                    }
                }
                Action::Assign { var, value } => {
                    let v = &m.state_vars()[*var];
                    let e = substitute_internal_values(ctx, m, &(ctx.rename)(m, value), &combo);
                    c.actions.push(PAction::Assign {
                        var: format!("{}__{}", m.name(), v.name),
                        value: e,
                    });
                }
            }
        }
        enumerate(ctx, pos + 1, c);
    }

    // Option: default (no transition of this machine matches).
    let mut c = combo.clone();
    let mut g = Guard::True;
    for t in &from_here {
        let gt = translate_guard(ctx, m, &t.guard, &combo);
        g = g.and(gt.not());
    }
    c.guard = simplify(combo.guard.clone().and(simplify(g)));
    if c.guard != Guard::False {
        enumerate(ctx, pos + 1, c);
    }
}

/// Translates a member guard into the product's atom space, substituting
/// internal-signal presence by this tick's emission facts.
fn translate_guard(ctx: &mut ComboCtx<'_>, m: &Cfsm, g: &Guard, combo: &Combo) -> Guard {
    match g {
        Guard::True => Guard::True,
        Guard::False => Guard::False,
        Guard::Present(i) => {
            let sig = m.inputs()[*i].name();
            if ctx.net.internal_signals().contains(&sig.to_owned()) {
                if combo.emitted.contains_key(sig) {
                    Guard::True
                } else {
                    Guard::False
                }
            } else {
                let pi = ctx
                    .ext_input_names
                    .iter()
                    .position(|n| n == sig)
                    .expect("external input registered");
                Guard::Present(pi)
            }
        }
        Guard::Test(i) => {
            let expr = (ctx.rename)(m, &m.tests()[*i].expr);
            let expr = substitute_internal_values(ctx, m, &expr, combo);
            let idx = match ctx.test_index.get(&expr) {
                Some(&idx) => idx,
                None => {
                    let idx = ctx.tests.len();
                    ctx.tests.push((format!("pt{idx}"), expr.clone()));
                    ctx.test_index.insert(expr, idx);
                    idx
                }
            };
            Guard::Test(idx)
        }
        Guard::Not(x) => translate_guard(ctx, m, x, combo).not(),
        Guard::And(a, b) => {
            translate_guard(ctx, m, a, combo).and(translate_guard(ctx, m, b, combo))
        }
        Guard::Or(a, b) => translate_guard(ctx, m, a, combo).or(translate_guard(ctx, m, b, combo)),
    }
}

/// Replaces references to internal valued signals (`sig_value`) by the
/// emitter's value expression (same-tick emission) or the buffer variable
/// (sampled from an earlier tick). Same-tick values are wrapped in an
/// explicit modular coercion, because a real emission clamps the value to
/// the signal's type before the receiver sees it.
fn substitute_internal_values(ctx: &ComboCtx<'_>, m: &Cfsm, e: &Expr, combo: &Combo) -> Expr {
    let mut out = e.clone();
    for s in m.inputs() {
        if !s.is_valued() {
            continue;
        }
        let sig = s.name();
        if !ctx.net.internal_signals().contains(&sig.to_owned()) {
            continue;
        }
        let vv = value_var_name(sig);
        let replacement = match combo.emitted.get(sig) {
            Some(Some(expr)) => coerce_expr(
                expr.clone(),
                s.value_type().expect("valued signal has a type"),
            ),
            _ => Expr::var(buf_var_name(sig)),
        };
        out = out.substitute(&vv, &replacement);
    }
    out
}

/// Builds an expression computing [`polis_expr::Type::clamp`] of `e` from
/// the safe modular operators (`((e % D) + D) % D`, shifted for signed
/// types), so inlined same-tick values wrap exactly like real emissions.
fn coerce_expr(e: Expr, ty: polis_expr::Type) -> Expr {
    match ty {
        polis_expr::Type::Bool => e,
        polis_expr::Type::Int { bits, signed } => {
            let d = 1i64 << bits;
            let positive_mod = |x: Expr| x.rem(Expr::int(d)).add(Expr::int(d)).rem(Expr::int(d));
            if signed {
                let h = d / 2;
                positive_mod(e.add(Expr::int(h))).sub(Expr::int(h))
            } else {
                positive_mod(e)
            }
        }
    }
}

/// Constant folding over guards.
fn simplify(g: Guard) -> Guard {
    match g {
        Guard::Not(x) => match simplify(*x) {
            Guard::True => Guard::False,
            Guard::False => Guard::True,
            Guard::Not(inner) => *inner,
            other => other.not(),
        },
        Guard::And(a, b) => match (simplify(*a), simplify(*b)) {
            (Guard::False, _) | (_, Guard::False) => Guard::False,
            (Guard::True, x) | (x, Guard::True) => x,
            (x, y) => x.and(y),
        },
        Guard::Or(a, b) => match (simplify(*a), simplify(*b)) {
            (Guard::True, _) | (_, Guard::True) => Guard::True,
            (Guard::False, x) | (x, Guard::False) => x,
            (x, y) => x.or(y),
        },
        leaf => leaf,
    }
}

fn map_guard_tests(g: &Guard, ids: &[crate::machine::TestId]) -> Guard {
    match g {
        Guard::Test(i) => Guard::Test(ids[*i].0),
        Guard::Not(x) => map_guard_tests(x, ids).not(),
        Guard::And(a, b) => map_guard_tests(a, ids).and(map_guard_tests(b, ids)),
        Guard::Or(a, b) => map_guard_tests(a, ids).or(map_guard_tests(b, ids)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_expr::{MapEnv, Type};
    use std::collections::BTreeSet;

    fn relay(name: &str, input: &str, output: &str) -> Cfsm {
        let mut b = Cfsm::builder(name);
        b.input_pure(input);
        b.output_pure(output);
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present(input).emit(output).done();
        b.build().unwrap()
    }

    /// Synchronous-tick reference: run members in topo order, deliver
    /// internal events within the tick, return all emissions.
    fn sync_tick_reference(
        net: &Network,
        present_ext: &BTreeSet<String>,
        values: &MapEnv,
        states: &mut [crate::CfsmState],
    ) -> Vec<String> {
        let topo = net.topo_order().unwrap();
        let mut present: BTreeSet<String> = present_ext.clone();
        let mut vals = values.clone();
        let mut emissions = Vec::new();
        for &mi in &topo {
            let m = &net.cfsms()[mi];
            let r = m.react(&present, &vals, &states[mi]).unwrap();
            for e in &r.emissions {
                emissions.push(e.signal.clone());
                present.insert(e.signal.clone());
                if let Some(v) = e.value {
                    vals.set(value_var_name(&e.signal), v);
                }
            }
            states[mi] = r.next;
        }
        emissions.sort();
        emissions
    }

    #[test]
    fn pipeline_composes_to_single_machine() {
        let net =
            Network::new("pipe", vec![relay("a", "in", "m"), relay("b", "m", "out")]).unwrap();
        let p = compose(&net).unwrap();
        assert_eq!(p.states().len(), 1);
        // The product reacts to `in` by emitting both `m` and `out` in one
        // tick (instantaneous internal broadcast).
        let present: BTreeSet<String> = ["in".to_string()].into();
        let r = p
            .react(&present, &MapEnv::new(), &p.initial_state())
            .unwrap();
        let mut sigs: Vec<&str> = r.emissions.iter().map(|e| e.signal.as_str()).collect();
        sigs.sort();
        assert_eq!(sigs, vec!["m", "out"]);
    }

    #[test]
    fn product_matches_synchronous_reference_on_valued_pipeline() {
        // a doubles its input value and forwards; b thresholds it.
        let mut b1 = Cfsm::builder("doubler");
        b1.input_valued("x", Type::uint(8));
        b1.output_valued("y", Type::uint(8));
        let s = b1.ctrl_state("s");
        b1.transition(s, s)
            .when_present("x")
            .emit_value("y", Expr::var("x_value").mul(Expr::int(2)))
            .done();
        let doubler = b1.build().unwrap();

        let mut b2 = Cfsm::builder("thresh");
        b2.input_valued("y", Type::uint(8));
        b2.output_pure("high");
        let s = b2.ctrl_state("s");
        let big = b2.test("big", Expr::var("y_value").gt(Expr::int(10)));
        b2.transition(s, s)
            .when_present("y")
            .when_test(big)
            .emit("high")
            .done();
        let thresh = b2.build().unwrap();

        let net = Network::new("vp", vec![doubler, thresh]).unwrap();
        let p = compose(&net).unwrap();

        let mut ref_states: Vec<crate::CfsmState> =
            net.cfsms().iter().map(|m| m.initial_state()).collect();
        let mut p_state = p.initial_state();

        for x in [3i64, 6, 9, 2, 30] {
            let present: BTreeSet<String> = ["x".to_string()].into();
            let mut vals = MapEnv::new();
            vals.set("x_value", Value::Int(x));

            let want = sync_tick_reference(&net, &present, &vals, &mut ref_states);
            let r = p.react(&present, &vals, &p_state).unwrap();
            p_state = r.next;
            let mut got: Vec<String> = r.emissions.iter().map(|e| e.signal.clone()).collect();
            got.sort();
            assert_eq!(got, want, "x={x}");
        }
    }

    #[test]
    fn product_state_space_is_tuple_product() {
        // Two independent togglers: product has up to 4 control states.
        let toggler = |name: &str, i: &str, o: &str| {
            let mut b = Cfsm::builder(name);
            b.input_pure(i);
            b.output_pure(o);
            let s0 = b.ctrl_state("s0");
            let s1 = b.ctrl_state("s1");
            b.transition(s0, s1).when_present(i).emit(o).done();
            b.transition(s1, s0).when_present(i).done();
            b.build().unwrap()
        };
        let net = Network::new(
            "pair",
            vec![toggler("t1", "a", "p"), toggler("t2", "b", "q")],
        )
        .unwrap();
        let p = compose(&net).unwrap();
        assert_eq!(p.states().len(), 4);
        // Blow-up: member transitions total 4; product has more.
        assert!(p.num_transitions() > 4);
    }

    #[test]
    fn buffered_value_used_in_later_tick() {
        // emitter sends v on `go`; sampler reads the *buffered* value when
        // it reacts to an unrelated trigger later.
        let mut b1 = Cfsm::builder("emitter");
        b1.input_pure("go");
        b1.output_valued("v", Type::uint(8));
        let s = b1.ctrl_state("s");
        b1.transition(s, s)
            .when_present("go")
            .emit_value("v", Expr::int(7))
            .done();
        let emitter = b1.build().unwrap();

        let mut b2 = Cfsm::builder("sampler");
        b2.input_valued("v", Type::uint(8));
        b2.input_pure("ask");
        b2.output_pure("seven");
        let s = b2.ctrl_state("s");
        let is7 = b2.test("is7", Expr::var("v_value").eq(Expr::int(7)));
        b2.transition(s, s)
            .when_present("ask")
            .when_test(is7)
            .emit("seven")
            .done();
        let sampler = b2.build().unwrap();

        let net = Network::new("buf", vec![emitter, sampler]).unwrap();
        let p = compose(&net).unwrap();
        let mut st = p.initial_state();

        // tick 1: ask before any emission — buffer is 0, no `seven`.
        let ask: BTreeSet<String> = ["ask".to_string()].into();
        let r = p.react(&ask, &MapEnv::new(), &st).unwrap();
        assert!(r.emissions.iter().all(|e| e.signal != "seven"));
        st = r.next;
        // tick 2: go — emits v=7, buffer updated.
        let go: BTreeSet<String> = ["go".to_string()].into();
        let r = p.react(&go, &MapEnv::new(), &st).unwrap();
        st = r.next;
        // tick 3: ask — sampler sees buffered 7.
        let r = p.react(&ask, &MapEnv::new(), &st).unwrap();
        assert!(r.emissions.iter().any(|e| e.signal == "seven"));
    }

    #[test]
    fn cyclic_network_is_rejected() {
        let net = Network::new("cyc", vec![relay("a", "x", "y"), relay("b", "y", "x")]).unwrap();
        assert!(matches!(
            compose(&net),
            Err(ComposeError::Network(NetworkError::CyclicCommunication))
        ));
    }

    #[test]
    fn compose_subset_keeps_rest() {
        let net = Network::new(
            "chain",
            vec![
                relay("a", "in", "m1"),
                relay("b", "m1", "m2"),
                relay("c", "m2", "out"),
            ],
        )
        .unwrap();
        let merged = compose_subset(&net, &["a", "b"]).unwrap();
        assert_eq!(merged.cfsms().len(), 2);
        assert!(merged.machine_index("a_b").is_some());
        assert!(merged.machine_index("c").is_some());
        // m2 is still internal between the product and c.
        assert!(merged.internal_signals().contains(&"m2".to_string()));
    }
}
