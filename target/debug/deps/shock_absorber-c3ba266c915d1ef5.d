/root/repo/target/debug/deps/shock_absorber-c3ba266c915d1ef5.d: crates/bench/src/bin/shock_absorber.rs Cargo.toml

/root/repo/target/debug/deps/libshock_absorber-c3ba266c915d1ef5.rmeta: crates/bench/src/bin/shock_absorber.rs Cargo.toml

crates/bench/src/bin/shock_absorber.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
