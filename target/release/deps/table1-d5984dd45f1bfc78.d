/root/repo/target/release/deps/table1-d5984dd45f1bfc78.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d5984dd45f1bfc78: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
