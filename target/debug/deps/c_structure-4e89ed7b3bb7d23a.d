/root/repo/target/debug/deps/c_structure-4e89ed7b3bb7d23a.d: crates/codegen/tests/c_structure.rs

/root/repo/target/debug/deps/c_structure-4e89ed7b3bb7d23a: crates/codegen/tests/c_structure.rs

crates/codegen/tests/c_structure.rs:
