/root/repo/target/debug/deps/semantics-343918e70d9cb7af.d: crates/rtos/tests/semantics.rs

/root/repo/target/debug/deps/semantics-343918e70d9cb7af: crates/rtos/tests/semantics.rs

crates/rtos/tests/semantics.rs:
