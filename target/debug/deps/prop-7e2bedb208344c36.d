/root/repo/target/debug/deps/prop-7e2bedb208344c36.d: crates/rtos/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-7e2bedb208344c36.rmeta: crates/rtos/tests/prop.rs Cargo.toml

crates/rtos/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
