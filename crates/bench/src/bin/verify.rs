//! Symbolic-verification benchmark: runs the reachability engine over
//! the seed example networks and synthetic relay chains of growing
//! width, and writes `BENCH_verify.json` with image steps, wall times,
//! and peak live BDD nodes.
//!
//! ```text
//! cargo run --release -p polis-bench --bin verify [-- --smoke] [--check] [--out FILE]
//! ```
//!
//! `--smoke` shrinks the synthetic chains so the bench finishes in well
//! under a second (the CI gate). `--check` asserts sanity thresholds —
//! every case reaches its fixpoint, counts a non-trivial reachable set,
//! and stays inside the default node budget — and exits non-zero on
//! violation.

use polis_cfsm::Network;
use polis_core::random::{random_network, RandomSpec};
use polis_core::trace::escape_json;
use polis_core::workloads;
use polis_verify::{Verifier, VerifyOptions, VerifyReport};
use std::time::Instant;

/// One measured verification case.
struct CaseResult {
    name: String,
    wall_ms: f64,
    report: VerifyReport,
}

impl CaseResult {
    fn to_json(&self) -> String {
        let s = &self.report.stats;
        format!(
            "{{\n      \"name\": \"{}\",\n      \"wall_ms\": {:.3},\n      \
             \"machines\": {},\n      \"buffers\": {},\n      \
             \"iterations\": {},\n      \"image_steps\": {},\n      \
             \"reached_states\": {},\n      \"reached_nodes\": {},\n      \
             \"peak_frontier_nodes\": {},\n      \"peak_live_nodes\": {},\n      \
             \"lost_possible\": {},\n      \"dead_transitions\": {},\n      \
             \"deadlock\": {}\n    }}",
            escape_json(&self.name),
            self.wall_ms,
            self.report.machines,
            self.report.buffers,
            s.iterations,
            s.image_steps,
            s.reached_states
                .map_or("null".to_owned(), |n| n.to_string()),
            s.reached_nodes,
            s.peak_frontier_nodes,
            s.peak_live_nodes,
            self.report
                .lost_events
                .iter()
                .filter(|e| e.possible)
                .count(),
            self.report.dead_transitions.len(),
            self.report.deadlock.is_some(),
        )
    }
}

fn run_case(name: &str, net: &Network) -> CaseResult {
    let start = Instant::now();
    let report = Verifier::run(net, &VerifyOptions::default())
        .unwrap_or_else(|e| panic!("{name}: verification failed: {e}"))
        .report();
    CaseResult {
        name: name.to_owned(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        report,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_verify.json".to_owned());

    // Wider chains exceed the default node budget: the reachable set of
    // the relay topology needs >2^22 live nodes from ~16 machines on.
    let chain_sizes: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 12] };

    let mut results = Vec::new();
    for (name, net) in [
        ("seatbelt", workloads::seat_belt()),
        ("shock_absorber", workloads::shock_absorber()),
        ("dashboard", workloads::dashboard()),
    ] {
        results.push(run_case(name, &net));
    }
    let spec = RandomSpec::default();
    for &n in chain_sizes {
        let net = random_network(n, &spec, 0x9e3779b97f4a7c15 ^ n as u64);
        results.push(run_case(&format!("relay_chain_{n}"), &net));
    }

    for r in &results {
        let s = &r.report.stats;
        println!(
            "{:<18} {:>9.2} ms  iters {:>3}  images {:>5}  states {:>12}  peak live {:>8}",
            r.name,
            r.wall_ms,
            s.iterations,
            s.image_steps,
            s.reached_states
                .map_or("overflow".to_owned(), |n| n.to_string()),
            s.peak_live_nodes,
        );
    }

    let mut json = String::from("{\n  \"bench\": \"verify\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"current\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str("\n    ");
        json.push_str(&r.to_json());
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        for r in &results {
            let s = &r.report.stats;
            if s.iterations == 0 || s.image_steps == 0 {
                failures.push(format!("{}: traversal did no work", r.name));
            }
            match s.reached_states {
                Some(n) if n >= 2 => {}
                other => failures.push(format!(
                    "{}: implausible reachable-state count {other:?}",
                    r.name
                )),
            }
            if s.peak_live_nodes == 0 {
                failures.push(format!("{}: peak live nodes not recorded", r.name));
            }
            // Every case must stay clearly inside the default 2^22 node
            // budget (relay_chain_12 is the largest at ~1.35M live).
            if s.peak_live_nodes > 1 << 21 {
                failures.push(format!(
                    "{}: peak live nodes {} above the 2^21 sanity ceiling",
                    r.name, s.peak_live_nodes
                ));
            }
        }
        if failures.is_empty() {
            println!("bench check OK");
        } else {
            for f in &failures {
                eprintln!("bench check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
