/root/repo/target/debug/deps/granularity-2839054e46d1e052.d: crates/bench/src/bin/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-2839054e46d1e052.rmeta: crates/bench/src/bin/granularity.rs Cargo.toml

crates/bench/src/bin/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
