/root/repo/target/debug/deps/c_structure-edd9bde21d79a232.d: crates/codegen/tests/c_structure.rs Cargo.toml

/root/repo/target/debug/deps/libc_structure-edd9bde21d79a232.rmeta: crates/codegen/tests/c_structure.rs Cargo.toml

crates/codegen/tests/c_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
