/root/repo/target/debug/deps/raw_programs-7d7a1e7861df7920.d: crates/vm/tests/raw_programs.rs

/root/repo/target/debug/deps/libraw_programs-7d7a1e7861df7920.rmeta: crates/vm/tests/raw_programs.rs

crates/vm/tests/raw_programs.rs:
