//! **polis** — software synthesis for embedded control applications.
//!
//! A from-scratch reproduction of Balarin et al., *"Synthesis of Software
//! Programs for Embedded Control Applications"* (DAC 1995 / IEEE TCAD
//! 18(6), 1999): networks of codesign finite state machines (CFSMs) are
//! compiled into optimized reactive C/object code through BDD-represented
//! characteristic functions and software graphs (s-graphs), with tightly
//! coupled code-size/cycle estimation and an automatically generated RTOS.
//!
//! This crate is the umbrella: it re-exports every layer under a stable
//! module name. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`expr`] | finite-domain values, expressions, C printing |
//! | [`bdd`] | ROBDD package with constrained sifting |
//! | [`cfsm`] | CFSM model, networks, characteristic functions, composition |
//! | [`sgraph`] | s-graph IR: build (Theorem 1), evaluate, ITE chain, collapsing |
//! | [`vm`] | virtual micro-controller targets, assembler, executor |
//! | [`estimate`] | calibrated cost/performance estimation |
//! | [`codegen`] | C emission and the two-level-jump baseline |
//! | [`rtos`] | generated RTOS and network co-simulation |
//! | [`lang`] | textual CFSM specification language |
//! | [`verify`] | symbolic reachability and conformance checking |
//! | [`core`] | end-to-end pipeline and evaluation workloads |
//!
//! # Examples
//!
//! The paper's Fig. 1 module, from source text to measured object code:
//!
//! ```
//! use polis::core::{synthesize, SynthesisOptions};
//! use polis::lang::parse_module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let simple = parse_module(
//!     "module simple {
//!         input c : u8;
//!         output y;
//!         var a : u8 := 0;
//!         state awaiting;
//!         from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
//!         from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
//!     }",
//! )?;
//! let result = synthesize(&simple, &SynthesisOptions::default());
//! assert!(result.c_code.contains("void simple_react"));
//! assert!(result.estimate.max_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use polis_bdd as bdd;
pub use polis_cfsm as cfsm;
pub use polis_codegen as codegen;
pub use polis_core as core;
pub use polis_estimate as estimate;
pub use polis_expr as expr;
pub use polis_lang as lang;
pub use polis_rtos as rtos;
pub use polis_sgraph as sgraph;
pub use polis_verify as verify;
pub use polis_vm as vm;
