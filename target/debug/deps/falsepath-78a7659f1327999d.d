/root/repo/target/debug/deps/falsepath-78a7659f1327999d.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/debug/deps/libfalsepath-78a7659f1327999d.rmeta: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
