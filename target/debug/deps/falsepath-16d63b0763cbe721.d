/root/repo/target/debug/deps/falsepath-16d63b0763cbe721.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/debug/deps/falsepath-16d63b0763cbe721: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
