//! Property-style verification of Theorem 1: for random CFSMs, the s-graph
//! built from the characteristic-function BDD computes exactly the CFSM's
//! transition function — under every variable-ordering scheme, for the
//! ITE-chain form, and after TEST-node collapsing. Deterministically seeded.

use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
use polis_core::random::Rng;
use polis_expr::{Expr, MapEnv, Value};
use polis_sgraph::{build, collapse, execute, ite_chain, CollapseOptions, SGraph};
use std::collections::BTreeSet;

/// A compact recipe for a random 2-input/2-output machine.
#[derive(Debug, Clone)]
struct MachineSpec {
    num_states: usize,                // 1..=3
    transitions: Vec<TransitionSpec>, // 1..=6
}

#[derive(Debug, Clone)]
struct TransitionSpec {
    from: usize,
    to: usize,
    /// Guard selector: which presence/test atoms are required
    /// (0 = don't care, 1 = required true, 2 = required false).
    need_a: u8,
    need_b: u8,
    need_t: u8,
    emit_x: bool,
    emit_y: bool,
    bump: bool,  // n := n + 1
    reset: bool, // n := 0 (overrides bump)
}

fn gen_machine(rng: &mut Rng) -> MachineSpec {
    let num_states = rng.usize(1..4);
    let transitions = (0..rng.usize(1..7))
        .map(|_| TransitionSpec {
            from: rng.usize(0..num_states),
            to: rng.usize(0..num_states),
            need_a: rng.usize(0..3) as u8,
            need_b: rng.usize(0..3) as u8,
            need_t: rng.usize(0..3) as u8,
            emit_x: rng.bool(),
            emit_y: rng.bool(),
            bump: rng.bool(),
            reset: rng.bool(),
        })
        .collect();
    MachineSpec {
        num_states,
        transitions,
    }
}

fn instantiate(spec: &MachineSpec) -> Cfsm {
    let mut b = Cfsm::builder("random");
    b.input_pure("a");
    b.input_valued("b", polis_expr::Type::uint(4));
    b.output_pure("x");
    b.output_pure("y");
    b.state_var("n", polis_expr::Type::uint(4), Value::Int(0));
    let states: Vec<_> = (0..spec.num_states)
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    let t = b.test("n_lt_b", Expr::var("n").lt(Expr::var("b_value")));
    for ts in &spec.transitions {
        let mut tb = b.transition(states[ts.from], states[ts.to]);
        tb = match ts.need_a {
            1 => tb.when_present("a"),
            2 => tb.when_absent("a"),
            _ => tb,
        };
        tb = match ts.need_b {
            1 => tb.when_present("b"),
            2 => tb.when_absent("b"),
            _ => tb,
        };
        tb = match ts.need_t {
            1 => tb.when_test(t),
            2 => tb.when_not_test(t),
            _ => tb,
        };
        if ts.emit_x {
            tb = tb.emit("x");
        }
        if ts.emit_y {
            tb = tb.emit("y");
        }
        if ts.reset {
            tb = tb.assign("n", Expr::int(0));
        } else if ts.bump {
            tb = tb.assign("n", Expr::var("n").add(Expr::int(1)));
        }
        tb.done();
    }
    b.build().expect("random machine is structurally valid")
}

/// One randomized stimulus step: which inputs arrive and b's value.
fn gen_stimulus(rng: &mut Rng) -> Vec<(bool, bool, i64)> {
    (0..rng.usize(1..12))
        .map(|_| (rng.bool(), rng.bool(), rng.i64(0..16)))
        .collect()
}

fn run_equivalence(m: &Cfsm, g: &SGraph, stimulus: &[(bool, bool, i64)]) {
    let mut st_ref = m.initial_state();
    let mut st_sg = m.initial_state();
    for &(pa, pb, bval) in stimulus {
        let mut present = BTreeSet::new();
        if pa {
            present.insert("a".to_string());
        }
        if pb {
            present.insert("b".to_string());
        }
        let mut vals = MapEnv::new();
        vals.set("b_value", Value::Int(bval));

        let want = m.react(&present, &vals, &st_ref).expect("reference");
        let got = execute(m, g, &present, &vals, &st_sg).expect("s-graph");

        assert_eq!(got.fired, want.fired, "fired mismatch");
        assert_eq!(got.next, want.next, "next-state mismatch");
        let mut ea: Vec<_> = want.emissions.iter().map(|e| &e.signal).collect();
        let mut eb: Vec<_> = got.emissions.iter().map(|e| &e.signal).collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb, "emission mismatch");

        st_ref = want.next;
        st_sg = got.next;

        assert_eq!(st_ref, st_sg);
    }
}

/// Runs `f` over 64 seeded (machine, stimulus) cases.
fn for_each_case(tag: u64, f: impl Fn(&Cfsm, &[(bool, bool, i64)])) {
    for case in 0..64u64 {
        let mut rng = Rng::new(tag ^ case.wrapping_mul(0x9e37_79b9));
        let spec = gen_machine(&mut rng);
        let stim = gen_stimulus(&mut rng);
        let m = instantiate(&spec);
        f(&m, &stim);
    }
}

#[test]
fn theorem1_natural_order() {
    for_each_case(0x01, |m, stim| {
        let rf = ReactiveFn::build(m);
        let g = build(&rf).expect("build");
        run_equivalence(m, &g, stim);
    });
}

#[test]
fn theorem1_outputs_after_all_inputs() {
    for_each_case(0x02, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        rf.sift(OrderScheme::OutputsAfterAllInputs);
        let g = build(&rf).expect("build");
        run_equivalence(m, &g, stim);
    });
}

#[test]
fn theorem1_outputs_after_support() {
    for_each_case(0x03, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        rf.sift_with_passes(OrderScheme::OutputsAfterSupport, usize::MAX);
        let g = build(&rf).expect("build");
        run_equivalence(m, &g, stim);
    });
}

#[test]
fn theorem1_ite_chain() {
    for_each_case(0x04, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        let g = ite_chain(&mut rf);
        run_equivalence(m, &g, stim);
    });
}

#[test]
fn theorem1_after_collapse() {
    for_each_case(0x05, |m, stim| {
        let mut rf = ReactiveFn::build(m);
        rf.sift(OrderScheme::OutputsAfterSupport);
        let g = build(&rf).expect("build");
        let c = collapse(&g, CollapseOptions::default());
        run_equivalence(m, &c, stim);
    });
}

#[test]
fn reduce_is_semantics_preserving() {
    for_each_case(0x06, |m, stim| {
        let rf = ReactiveFn::build(m);
        let g = build(&rf).expect("build");
        let r = g.reduce();
        assert!(r.len() <= g.len());
        run_equivalence(m, &r, stim);
    });
}
