/root/repo/target/debug/deps/polis-ae30614dca89caa2.d: src/lib.rs

/root/repo/target/debug/deps/libpolis-ae30614dca89caa2.rlib: src/lib.rs

/root/repo/target/debug/deps/libpolis-ae30614dca89caa2.rmeta: src/lib.rs

src/lib.rs:
