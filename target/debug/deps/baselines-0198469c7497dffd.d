/root/repo/target/debug/deps/baselines-0198469c7497dffd.d: tests/baselines.rs

/root/repo/target/debug/deps/libbaselines-0198469c7497dffd.rmeta: tests/baselines.rs

tests/baselines.rs:
