//! **Table II** — Effect of different TEST variable orderings on code
//! size (Section V-A / III-B3).
//!
//! Columns per dashboard CFSM, sizes in `Mcu8` bytes:
//!
//! * *naive* — declaration order, no sifting;
//! * *after-inputs* — sifting restricted so all outputs follow all inputs;
//! * *after-support* — sifting with each output after its own support
//!   (the paper's default; better sharing);
//! * *two-level* — the multiway-jump reference implementation.
//!
//! The paper's shape: naive > two-level > sifted decision graphs, with
//! after-support ≤ after-inputs, and timing roughly unchanged across the
//! orderings (only the test order moves).

use polis_cfsm::OrderScheme;
use polis_core::{workloads, ImplStyle, SynthesisOptions};
use polis_estimate::calibrate;

fn main() {
    let net = workloads::dashboard();
    let params = calibrate(polis_vm::Profile::Mcu8);

    let variants: [(&str, SynthesisOptions); 4] = [
        (
            "naive",
            SynthesisOptions {
                scheme: OrderScheme::Natural,
                ..SynthesisOptions::default()
            },
        ),
        (
            "after-inputs",
            SynthesisOptions {
                scheme: OrderScheme::OutputsAfterAllInputs,
                ..SynthesisOptions::default()
            },
        ),
        (
            "after-support",
            SynthesisOptions {
                scheme: OrderScheme::OutputsAfterSupport,
                ..SynthesisOptions::default()
            },
        ),
        (
            "two-level",
            SynthesisOptions {
                style: ImplStyle::TwoLevel,
                ..SynthesisOptions::default()
            },
        ),
    ];

    println!("Table II: code size (bytes, Mcu8) under different orderings\n");
    println!(
        "| {:<10} | {:>8} | {:>12} | {:>13} | {:>9} |",
        "CFSM", "naive", "after-inputs", "after-support", "two-level"
    );
    println!("|{}|", "-".repeat(66));
    let mut totals = [0u64; 4];
    let mut max_spread = [0u64; 4]; // max cycles per variant, for the timing note
    for m in net.cfsms() {
        let mut sizes = [0u64; 4];
        for (k, (_, opts)) in variants.iter().enumerate() {
            let r = polis_core::synthesize_with_params(m, opts, &params);
            sizes[k] = r.measured.size_bytes;
            totals[k] += r.measured.size_bytes;
            max_spread[k] = max_spread[k].max(r.measured.max_cycles);
        }
        println!(
            "| {:<10} | {:>8} | {:>12} | {:>13} | {:>9} |",
            m.name(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3]
        );
    }
    println!(
        "| {:<10} | {:>8} | {:>12} | {:>13} | {:>9} |",
        "TOTAL", totals[0], totals[1], totals[2], totals[3]
    );

    println!("\nworst-case reaction cycles per variant: {max_spread:?}");
    println!("shape checks:");
    let check =
        |label: &str, ok: bool| println!("  {label}: {}", if ok { "HOLDS" } else { "VIOLATED" });
    check("sifted (after-support) <= naive", totals[2] <= totals[0]);
    check(
        "after-support <= after-inputs (better sharing)",
        totals[2] <= totals[1],
    );
    check(
        "optimized decision graph <= two-level jump",
        totals[2] <= totals[3],
    );
    check("timing approximately unchanged across orderings (<=15%)", {
        let mx = max_spread[..3].iter().max().copied().unwrap_or(0) as f64;
        let mn = max_spread[..3].iter().min().copied().unwrap_or(0) as f64;
        (mx - mn) / mx.max(1.0) <= 0.15
    });
}
