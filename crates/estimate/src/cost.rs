//! The estimator proper: parameter application and path analyses.

use crate::params::{CostPair, CostParams, OpClass};
use polis_cfsm::{Action, Cfsm};
use polis_expr::Expr;
use polis_sgraph::{analysis, AssignLabel, ComputedTarget, Cond, NodeId, SGraph, SNode, TestLabel};
use polis_vm::BufferPolicy;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// The estimator's output for one CFSM routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Estimated code size in bytes (ROM).
    pub size_bytes: u64,
    /// Estimated minimum cycles per reaction (Dijkstra shortest path).
    pub min_cycles: u64,
    /// Estimated maximum cycles per reaction (PERT longest path).
    pub max_cycles: u64,
    /// Estimated data memory in bytes (RAM): state, entry copies, event
    /// value buffers, frame.
    pub ram_bytes: u64,
}

/// Estimates code size and cycle bounds for the s-graph of `cfsm` under
/// the calibrated `params` (Section III-C1: "cost estimation can be done
/// with a simple traversal of the s-graph").
pub fn estimate(cfsm: &Cfsm, g: &SGraph, params: &CostParams, policy: BufferPolicy) -> Estimate {
    let reachable = g.reachable();

    // Entry overhead: call/return plus one local init per buffered copy.
    let buffered = match policy {
        BufferPolicy::All => analysis::vars_referenced(cfsm, g).len(),
        BufferPolicy::Minimal => analysis::vars_needing_buffer(cfsm, g).len(),
    };
    let ctrl_copies = usize::from(cfsm.states().len() > 1 && policy == BufferPolicy::All);
    let copies = buffered + ctrl_copies;

    let mut size = params.call_return.bytes + copies as f64 * params.local_init.bytes;
    let mut node_cycles: HashMap<NodeId, f64> = HashMap::new();
    let mut parents: HashMap<NodeId, usize> = HashMap::new();
    for &id in &reachable {
        let c = node_cost(cfsm, g, id, params);
        size += c.bytes;
        node_cycles.insert(id, c.cycles);
        for s in successors(g, id) {
            *parents.entry(s).or_default() += 1;
        }
    }
    // Layout overhead: a node with k parents needs ~k-1 explicit gotos.
    for (_, &p) in parents.iter().filter(|(_, &p)| p > 1) {
        size += (p - 1) as f64 * params.goto.bytes;
    }

    let entry_cycles = params.call_return.cycles + copies as f64 * params.local_init.cycles;
    let max_cycles = entry_cycles + pert_longest(g, &node_cycles, params);
    let min_cycles = entry_cycles + dijkstra_shortest(g, &node_cycles, params);

    // RAM: persistent state + copies + event value buffers + frame.
    let mut ram = params.bytes_frame;
    for v in cfsm.state_vars() {
        ram += f64::from(v.ty.byte_size());
    }
    ram += copies as f64 * params.bytes_int.clamp(1.0, 2.0);
    for s in cfsm.inputs() {
        if let Some(ty) = s.value_type() {
            ram += f64::from(ty.byte_size());
        }
    }
    if cfsm.states().len() > 1 {
        ram += params.bytes_bool.max(1.0);
    }

    Estimate {
        size_bytes: size.round().max(0.0) as u64,
        min_cycles: min_cycles.round().max(0.0) as u64,
        max_cycles: max_cycles.round().max(0.0) as u64,
        ram_bytes: ram.round().max(0.0) as u64,
    }
}

#[allow(dead_code)]
pub(crate) fn successors(g: &SGraph, id: NodeId) -> Vec<NodeId> {
    match g.node(id) {
        SNode::Begin { next } | SNode::Assign { next, .. } => vec![*next],
        SNode::End => vec![],
        SNode::Test { children, .. } => children.clone(),
    }
}

/// Cycles added on the edge from a TEST to its `k`-th child.
pub(crate) fn edge_cycles(g: &SGraph, id: NodeId, k: usize, params: &CostParams) -> f64 {
    match g.node(id) {
        SNode::Test { children, .. } if children.len() == 2 => {
            if k == 1 {
                params.edge_true_cycles
            } else {
                params.edge_false_cycles
            }
        }
        _ => 0.0,
    }
}

fn expr_ops_cost(e: &Expr, params: &CostParams) -> CostPair {
    let mut c = CostPair::default();
    collect_expr_ops(e, params, &mut c);
    c
}

fn collect_expr_ops(e: &Expr, params: &CostParams, acc: &mut CostPair) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Unary(_, a) => {
            add(acc, params.op(OpClass::Logic));
            collect_expr_ops(a, params, acc);
        }
        Expr::Binary(op, a, b) => {
            add(acc, params.op(OpClass::of(*op)));
            collect_expr_ops(a, params, acc);
            collect_expr_ops(b, params, acc);
        }
        Expr::Ite(c, t, e2) => {
            // An ITE compiles to a test and a goto around the else arm.
            add(acc, params.test_expr_base);
            add(acc, params.goto);
            collect_expr_ops(c, params, acc);
            collect_expr_ops(t, params, acc);
            collect_expr_ops(e2, params, acc);
        }
    }
}

fn cond_cost(cfsm: &Cfsm, cond: &Cond, params: &CostParams) -> CostPair {
    let mut c = CostPair::default();
    collect_cond(cfsm, cond, params, &mut c);
    c
}

fn collect_cond(cfsm: &Cfsm, cond: &Cond, params: &CostParams, acc: &mut CostPair) {
    match cond {
        Cond::Const(_) => {}
        Cond::Present(_) => {
            // The detection call itself (branching is charged separately).
            add(acc, sub(params.test_present, params.test_expr_base));
        }
        Cond::Test(t) => {
            let e = &cfsm.tests()[*t].expr;
            add(acc, expr_ops_cost(e, params));
        }
        Cond::CtrlBit { .. } => {
            add(acc, sub(params.test_ctrl_bit, params.test_expr_base));
        }
        Cond::Not(a) => {
            add(acc, params.op(OpClass::Logic));
            collect_cond(cfsm, a, params, acc);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            add(acc, params.op(OpClass::Logic));
            collect_cond(cfsm, a, params, acc);
            collect_cond(cfsm, b, params, acc);
        }
    }
}

fn add(acc: &mut CostPair, x: CostPair) {
    acc.bytes += x.bytes;
    acc.cycles += x.cycles;
}

fn sub(a: CostPair, b: CostPair) -> CostPair {
    CostPair {
        bytes: (a.bytes - b.bytes).max(0.0),
        cycles: (a.cycles - b.cycles).max(0.0),
    }
}

fn action_cost(cfsm: &Cfsm, action: usize, params: &CostParams) -> CostPair {
    match &cfsm.actions()[action] {
        Action::Emit { value: None, .. } => params.emit_pure,
        Action::Emit { value: Some(e), .. } => {
            let mut c = params.emit_valued;
            add(&mut c, expr_ops_cost(e, params));
            c
        }
        Action::Assign { value, .. } => {
            let mut c = params.assign_var;
            add(&mut c, expr_ops_cost(value, params));
            c
        }
    }
}

pub(crate) fn node_cost(cfsm: &Cfsm, g: &SGraph, id: NodeId, params: &CostParams) -> CostPair {
    match g.node(id) {
        SNode::Begin { .. } | SNode::End => CostPair::default(),
        SNode::Test { label, children } => match label {
            TestLabel::Present { .. } => params.test_present,
            TestLabel::TestExpr { test } => {
                let mut c = params.test_expr_base;
                add(&mut c, expr_ops_cost(&cfsm.tests()[*test].expr, params));
                c
            }
            TestLabel::CtrlBit { .. } => params.test_ctrl_bit,
            TestLabel::CtrlSwitch { .. } => {
                let mut c = params.switch_base;
                for _ in children {
                    add(&mut c, params.switch_per_arm);
                }
                c
            }
            TestLabel::Compound { cond } => {
                let mut c = params.test_expr_base;
                add(&mut c, cond_cost(cfsm, cond, params));
                c
            }
        },
        SNode::Assign { label, .. } => match label {
            AssignLabel::Consume => params.consume,
            AssignLabel::Action { action } => action_cost(cfsm, *action, params),
            AssignLabel::NextCtrlBits { bits, .. } => {
                let mut c = CostPair::default();
                for _ in bits {
                    add(&mut c, params.ctrl_set_per_bit);
                }
                c
            }
            AssignLabel::Computed { target, cond } => {
                let mut c = cond_cost(cfsm, cond, params);
                match target {
                    ComputedTarget::Consume => {
                        add(&mut c, params.goto);
                        add(&mut c, params.consume);
                    }
                    ComputedTarget::Action { action } => {
                        add(&mut c, params.goto);
                        add(&mut c, action_cost(cfsm, *action, params));
                    }
                    ComputedTarget::CtrlBit { .. } => add(&mut c, params.ctrl_set_per_bit),
                }
                c
            }
        },
    }
}

/// PERT longest path from BEGIN to END over node and edge cycles.
fn pert_longest(g: &SGraph, cycles: &HashMap<NodeId, f64>, params: &CostParams) -> f64 {
    let order = g.topo_order();
    let mut longest: HashMap<NodeId, f64> = HashMap::new();
    for &id in order.iter().rev() {
        let own = cycles.get(&id).copied().unwrap_or(0.0);
        let best = successors(g, id)
            .iter()
            .enumerate()
            .map(|(k, s)| edge_cycles(g, id, k, params) + longest[s])
            .fold(0.0f64, f64::max);
        longest.insert(id, own + best);
    }
    longest[&NodeId::BEGIN]
}

/// Dijkstra shortest path from BEGIN to END (the paper names Dijkstra for
/// the minimum; on this DAG it agrees with the DP but we keep the
/// algorithmic fidelity).
fn dijkstra_shortest(g: &SGraph, cycles: &HashMap<NodeId, f64>, params: &CostParams) -> f64 {
    #[derive(PartialEq)]
    struct Entry(f64, NodeId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap.
            other.0.total_cmp(&self.0)
        }
    }

    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut heap = BinaryHeap::new();
    let start_cost = cycles.get(&NodeId::BEGIN).copied().unwrap_or(0.0);
    dist.insert(NodeId::BEGIN, start_cost);
    heap.push(Entry(start_cost, NodeId::BEGIN));
    while let Some(Entry(d, id)) = heap.pop() {
        if d > dist.get(&id).copied().unwrap_or(f64::INFINITY) {
            continue;
        }
        if id == NodeId::END {
            return d;
        }
        for (k, s) in successors(g, id).into_iter().enumerate() {
            let nd = d + edge_cycles(g, id, k, params) + cycles.get(&s).copied().unwrap_or(0.0);
            if nd < dist.get(&s).copied().unwrap_or(f64::INFINITY) {
                dist.insert(s, nd);
                heap.push(Entry(nd, s));
            }
        }
    }
    dist.get(&NodeId::END).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use polis_cfsm::{OrderScheme, ReactiveFn};
    use polis_expr::{Type, Value};
    use polis_sgraph::build;
    use polis_vm::{analyze, assemble, compile, Profile};

    fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().unwrap()
    }

    fn toggler() -> Cfsm {
        let mut b = Cfsm::builder("toggler");
        b.input_pure("tick");
        b.output_pure("on");
        b.output_pure("off");
        let s_off = b.ctrl_state("off");
        let s_on = b.ctrl_state("on");
        b.transition(s_off, s_on)
            .when_present("tick")
            .emit("on")
            .done();
        b.transition(s_on, s_off)
            .when_present("tick")
            .emit("off")
            .done();
        b.build().unwrap()
    }

    fn measure(m: &Cfsm, g: &SGraph, profile: Profile) -> (u64, u64, u64) {
        let prog = compile(m, g, BufferPolicy::All);
        let obj = assemble(&prog, profile);
        let b = analyze(&prog, &obj);
        (u64::from(obj.size_bytes()), b.min_cycles, b.max_cycles)
    }

    /// The Table I experiment in miniature: estimation within a modest
    /// relative error of exact object-code measurement.
    #[test]
    fn estimates_track_measurement() {
        let params = calibrate(Profile::Mcu8);
        for m in [simple(), toggler()] {
            let mut rf = ReactiveFn::build(&m);
            rf.sift(OrderScheme::OutputsAfterSupport);
            let g = build(&rf).unwrap();
            let est = estimate(&m, &g, &params, BufferPolicy::All);
            let (size, min, max) = measure(&m, &g, Profile::Mcu8);
            let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
            assert!(
                rel(est.size_bytes, size) < 0.4,
                "{}: size est {} vs {}",
                m.name(),
                est.size_bytes,
                size
            );
            assert!(
                rel(est.max_cycles, max) < 0.4,
                "{}: max est {} vs {}",
                m.name(),
                est.max_cycles,
                max
            );
            assert!(
                rel(est.min_cycles.max(1), min.max(1)) < 0.6,
                "{}: min est {} vs {}",
                m.name(),
                est.min_cycles,
                min
            );
        }
    }

    #[test]
    fn bounds_are_ordered() {
        let params = calibrate(Profile::Mcu8);
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let est = estimate(&m, &g, &params, BufferPolicy::All);
        assert!(est.min_cycles <= est.max_cycles);
        assert!(est.size_bytes > 0);
        assert!(est.ram_bytes > 0);
    }

    #[test]
    fn minimal_buffering_estimates_lower_entry_cost() {
        let params = calibrate(Profile::Mcu8);
        let m = simple();
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let all = estimate(&m, &g, &params, BufferPolicy::All);
        let min = estimate(&m, &g, &params, BufferPolicy::Minimal);
        assert!(min.size_bytes <= all.size_bytes);
        assert!(min.max_cycles <= all.max_cycles);
        assert!(min.ram_bytes <= all.ram_bytes);
    }

    #[test]
    fn bigger_machines_estimate_bigger() {
        let params = calibrate(Profile::Mcu8);
        let m1 = toggler();
        let rf1 = ReactiveFn::build(&m1);
        let g1 = build(&rf1).unwrap();
        let e1 = estimate(&m1, &g1, &params, BufferPolicy::All);

        let m2 = simple();
        let rf2 = ReactiveFn::build(&m2);
        let g2 = build(&rf2).unwrap();
        let e2 = estimate(&m2, &g2, &params, BufferPolicy::All);

        // simple has data-path work; its max path should be longer than
        // the pure toggler's.
        assert!(e2.max_cycles > e1.min_cycles);
        assert!(e1.size_bytes > 0 && e2.size_bytes > 0);
    }
}
