//! Behavioural tests of the generated RTOS semantics (Section IV):
//! propagation, one-place-buffer overwrites, event preservation, the
//! snapshot-consistency race, scheduling policies, and delivery modes.

use polis_cfsm::{Cfsm, Network};
use polis_expr::{Expr, Type, Value};
use polis_rtos::{DeliveryMode, RtosConfig, SchedulingPolicy, Simulator, Stimulus};

fn relay(name: &str, input: &str, output: &str) -> Cfsm {
    let mut b = Cfsm::builder(name);
    b.input_pure(input);
    b.output_pure(output);
    let s = b.ctrl_state("s");
    b.transition(s, s).when_present(input).emit(output).done();
    b.build().unwrap()
}

#[test]
fn pipeline_propagates_events_in_order() {
    let net = Network::new(
        "chain",
        vec![
            relay("a", "in", "m1"),
            relay("b", "m1", "m2"),
            relay("c", "m2", "out"),
        ],
    )
    .unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    let stim = vec![Stimulus::pure(0, "in"), Stimulus::pure(10_000, "in")];
    sim.run(&stim);
    let outs: Vec<&str> = sim
        .trace()
        .iter()
        .filter(|t| t.signal == "out")
        .map(|t| t.by.as_str())
        .collect();
    assert_eq!(outs, vec!["c", "c"], "trace: {:?}", sim.trace());
    // m1 is emitted before m2 before out each round.
    let times: Vec<(&str, u64)> = sim
        .trace()
        .iter()
        .map(|t| (t.signal.as_str(), t.time))
        .collect();
    let first = |sig: &str| times.iter().find(|(s, _)| *s == sig).unwrap().1;
    assert!(first("m1") <= first("m2"));
    assert!(first("m2") <= first("out"));
    assert_eq!(sim.stats().fired, vec![2, 2, 2]);
}

#[test]
fn one_place_buffer_overwrites_fast_events() {
    // A counter that increments per detected event: two events close
    // together (before the consumer can run) collapse into one.
    let mut b = Cfsm::builder("counter");
    b.input_pure("e");
    b.output_pure("seen");
    let s = b.ctrl_state("s");
    b.transition(s, s).when_present("e").emit("seen").done();
    let m = b.build().unwrap();
    let net = Network::new("n", vec![m]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    // Both events at t=0: the second lands before the task runs.
    sim.run(&[Stimulus::pure(0, "e"), Stimulus::pure(0, "e")]);
    let seen = sim.trace().iter().filter(|t| t.signal == "seen").count();
    assert_eq!(seen, 1, "overwritten event must be lost");
    assert_eq!(sim.stats().overwritten, vec![1]);
}

#[test]
fn events_preserved_when_no_transition_fires() {
    // Fires only when BOTH a and b are present in the snapshot.
    let mut bld = Cfsm::builder("both");
    bld.input_pure("a");
    bld.input_pure("b");
    bld.output_pure("go");
    let s = bld.ctrl_state("s");
    bld.transition(s, s)
        .when_present("a")
        .when_present("b")
        .emit("go")
        .done();
    let m = bld.build().unwrap();
    let net = Network::new("n", vec![m]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    // a arrives long before b: the first execution fires nothing and must
    // NOT consume a.
    sim.run(&[Stimulus::pure(0, "a"), Stimulus::pure(50_000, "b")]);
    let fired: Vec<&str> = sim
        .trace()
        .iter()
        .filter(|t| t.signal == "go")
        .map(|t| t.by.as_str())
        .collect();
    assert_eq!(fired, vec!["both"], "a must survive the empty reaction");
    // The task ran at least twice (once unfired, once fired).
    assert!(sim.stats().reactions[0] >= 2);
    assert_eq!(sim.stats().fired[0], 1);
}

#[test]
fn snapshot_race_of_section_iv_d() {
    // A machine with "y and not x" behaviour: if it could observe y
    // arriving mid-reaction while having tested x=absent earlier, it would
    // execute a transition enabled at no point in time. The RTOS holds
    // back mid-reaction arrivals, so the y-only transition runs in the
    // *next* execution instead.
    let mut bld = Cfsm::builder("race");
    bld.input_pure("x");
    bld.input_pure("y");
    bld.output_pure("y_only");
    bld.output_pure("seen_x");
    let s = bld.ctrl_state("s");
    bld.transition(s, s)
        .when_present("y")
        .when_absent("x")
        .emit("y_only")
        .done();
    bld.transition(s, s).when_present("x").emit("seen_x").done();
    let m = bld.build().unwrap();
    let net = Network::new("n", vec![m]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    // x arrives; while the task reacts to x, y arrives (within the
    // reaction's cycle window). The snapshot shows x only; y is pending.
    sim.run(&[Stimulus::pure(0, "x"), Stimulus::pure(60, "y")]);
    let sigs: Vec<&str> = sim.trace().iter().map(|t| t.signal.as_str()).collect();
    assert_eq!(
        sigs,
        vec!["seen_x", "y_only"],
        "y must be deferred to the next execution: {:?}",
        sim.trace()
    );
}

#[test]
fn static_priority_dispatches_urgent_task_first() {
    let net = Network::new(
        "two",
        vec![
            relay("low", "e_low", "out_low"),
            relay("high", "e_high", "out_high"),
        ],
    )
    .unwrap();
    let config = RtosConfig {
        policy: SchedulingPolicy::StaticPriority {
            priorities: vec![9, 1],
        },
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&net, config);
    // Both enabled at the same instant.
    sim.run(&[Stimulus::pure(0, "e_low"), Stimulus::pure(0, "e_high")]);
    let first = &sim.trace()[0];
    assert_eq!(first.by, "high", "trace: {:?}", sim.trace());
}

#[test]
fn round_robin_alternates() {
    let net = Network::new(
        "two",
        vec![relay("t1", "e1", "o1"), relay("t2", "e2", "o2")],
    )
    .unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    sim.run(&[
        Stimulus::pure(0, "e1"),
        Stimulus::pure(0, "e2"),
        Stimulus::pure(100_000, "e1"),
        Stimulus::pure(100_000, "e2"),
    ]);
    assert_eq!(sim.stats().fired, vec![2, 2]);
}

#[test]
fn polling_defers_delivery() {
    let net = Network::new("n", vec![relay("t", "e", "o")]).unwrap();
    // Interrupt-driven run.
    let mut fast = Simulator::build(&net, RtosConfig::default());
    fast.run(&[Stimulus::pure(10, "e")]);
    let t_int = fast.trace()[0].time;
    // Polled at a coarse period.
    let mut config = RtosConfig::default();
    config
        .delivery
        .insert("e".to_owned(), DeliveryMode::Polled { period: 5_000 });
    let mut slow = Simulator::build(&net, config);
    slow.run(&[Stimulus::pure(10, "e")]);
    let t_poll = slow.trace()[0].time;
    assert!(
        t_poll >= 5_000 && t_poll > t_int,
        "polled {t_poll} vs interrupt {t_int}"
    );
}

#[test]
fn valued_events_carry_data_through_the_network() {
    // doubler -> thresholder pipeline with values.
    let mut b = Cfsm::builder("doubler");
    b.input_valued("x", Type::uint(8));
    b.output_valued("y", Type::uint(8));
    let s = b.ctrl_state("s");
    b.transition(s, s)
        .when_present("x")
        .emit_value("y", Expr::var("x_value").mul(Expr::int(2)))
        .done();
    let doubler = b.build().unwrap();

    let mut b = Cfsm::builder("thresh");
    b.input_valued("y", Type::uint(8));
    b.output_pure("high");
    let s = b.ctrl_state("s");
    let big = b.test("big", Expr::var("y_value").gt(Expr::int(10)));
    b.transition(s, s)
        .when_present("y")
        .when_test(big)
        .emit("high")
        .done();
    let thresh = b.build().unwrap();

    let net = Network::new("vp", vec![doubler, thresh]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    sim.run(&[
        Stimulus::valued(0, "x", 3),      // 6: below threshold
        Stimulus::valued(50_000, "x", 9), // 18: above
    ]);
    let ys: Vec<Option<i64>> = sim
        .trace()
        .iter()
        .filter(|t| t.signal == "y")
        .map(|t| t.value)
        .collect();
    assert_eq!(ys, vec![Some(6), Some(18)]);
    let highs = sim.trace().iter().filter(|t| t.signal == "high").count();
    assert_eq!(highs, 1);
}

#[test]
fn latency_probe_reports_worst_case() {
    let net = Network::new("n", vec![relay("t", "e", "o")]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    let stim = vec![Stimulus::pure(0, "e"), Stimulus::pure(10_000, "e")];
    sim.run(&stim);
    let lat = sim.worst_latency(&stim, "e", "o").expect("responses seen");
    assert!(lat > 0);
    assert!(lat < 5_000, "relay latency should be small: {lat}");
}

#[test]
fn state_persists_across_reactions() {
    // A counter that emits every 3rd event.
    let mut b = Cfsm::builder("div3");
    b.input_pure("e");
    b.output_pure("third");
    b.state_var("n", Type::uint(4), Value::Int(0));
    let s = b.ctrl_state("s");
    let full = b.test("full", Expr::var("n").ge(Expr::int(2)));
    b.transition(s, s)
        .when_present("e")
        .when_test(full)
        .assign("n", Expr::int(0))
        .emit("third")
        .done();
    b.transition(s, s)
        .when_present("e")
        .assign("n", Expr::var("n").add(Expr::int(1)))
        .done();
    let m = b.build().unwrap();
    let net = Network::new("n", vec![m]).unwrap();
    let mut sim = Simulator::build(&net, RtosConfig::default());
    let stim: Vec<Stimulus> = (0..9).map(|i| Stimulus::pure(i * 100_000, "e")).collect();
    sim.run(&stim);
    let thirds = sim.trace().iter().filter(|t| t.signal == "third").count();
    assert_eq!(thirds, 3);
}
