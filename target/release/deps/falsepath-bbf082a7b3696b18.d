/root/repo/target/release/deps/falsepath-bbf082a7b3696b18.d: crates/bench/src/bin/falsepath.rs

/root/repo/target/release/deps/falsepath-bbf082a7b3696b18: crates/bench/src/bin/falsepath.rs

crates/bench/src/bin/falsepath.rs:
