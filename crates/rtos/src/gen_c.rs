//! C skeleton of the generated RTOS.
//!
//! The paper generates "C (and some assembly) code that implements that
//! policy at run-time" [15]. This module prints the equivalent C skeleton:
//! the event flag matrix, the emission/detection services, the ISR stubs,
//! the polling routine, and the scheduler main loop, specialized to the
//! network's fixed communication structure (the reason the generated RTOS
//! is smaller than a commercial one, Section IV-E).

use crate::sim::{DeliveryMode, RtosConfig, SchedulingPolicy};
use polis_cfsm::Network;
use std::fmt::Write as _;

/// Emits the RTOS C skeleton for `net` under `config`.
pub fn emit_rtos_c(net: &Network, config: &RtosConfig) -> String {
    let mut out = String::new();
    let n = net.cfsms().len();
    let _ = writeln!(
        out,
        "/* generated RTOS for network `{}` -- {} tasks, {} policy */",
        net.name(),
        n,
        match &config.policy {
            SchedulingPolicy::RoundRobin => "round-robin",
            SchedulingPolicy::StaticPriority { .. } => "static-priority",
        }
    );
    out.push_str("#include \"polis_rtos.h\"\n\n");

    // Task table and state (hardware machines have no software routine).
    for m in net.cfsms() {
        if config.hardware.contains(m.name()) {
            let _ = writeln!(out, "/* `{}` is implemented in hardware */", m.name());
            continue;
        }
        let _ = writeln!(
            out,
            "extern void {}_react(struct {}_state *st);",
            m.name(),
            m.name()
        );
        let _ = writeln!(out, "static struct {}_state {}_st;", m.name(), m.name());
    }
    for (a, b) in &config.chains {
        let _ = writeln!(
            out,
            "/* executions of `{b}` are chained after `{a}` (no scheduler hop) */"
        );
    }
    out.push('\n');
    let _ = writeln!(out, "#define POLIS_NUM_TASKS {n}");
    out.push_str("static volatile unsigned char polis_flags[POLIS_NUM_TASKS][8];\n");
    out.push_str("static volatile long polis_values[POLIS_NUM_TASKS][8];\n");
    out.push_str("static volatile unsigned char polis_running;\n");
    out.push_str("static volatile unsigned char polis_pending[POLIS_NUM_TASKS][8];\n\n");

    // Emission service: the fixed fan-out of this network.
    out.push_str(
        "/* Emission: set every consumer's flag; arrivals for the running\n\
        \u{20}* task are deferred so its input snapshot stays consistent. */\n\
        void polis_emit(int sig)\n{\n",
    );
    for sig in net
        .emitted_signals()
        .iter()
        .chain(net.primary_inputs().iter())
    {
        let _ = writeln!(out, "    /* {sig} -> tasks {:?} */", net.consumers_of(sig));
    }
    out.push_str("    /* ...table-driven flag updates elided... */\n}\n\n");

    // ISR / polling stubs for primary inputs.
    for sig in net.primary_inputs() {
        match config.delivery.get(&sig) {
            Some(DeliveryMode::Polled { period }) => {
                let _ = writeln!(
                    out,
                    "/* `{sig}` is polled every {period} cycles */\nvoid polis_poll_{sig}(void)\n{{\n    if (POLIS_PORT_{sig}) polis_emit(POLIS_SIG_{sig});\n}}\n"
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "/* `{sig}` is interrupt-driven */\nvoid polis_isr_{sig}(void)\n{{\n    polis_emit(POLIS_SIG_{sig});\n}}\n"
                );
            }
        }
    }

    // Scheduler.
    out.push_str("\nvoid polis_scheduler(void)\n{\n    for (;;) {\n");
    match &config.policy {
        SchedulingPolicy::RoundRobin => {
            out.push_str("        /* round-robin over enabled tasks */\n");
            for (i, m) in net.cfsms().iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        if (polis_enabled({i})) {{ polis_running = {i}; {}_react(&{}_st); polis_commit({i}); }}",
                    m.name(),
                    m.name()
                );
            }
        }
        SchedulingPolicy::StaticPriority { priorities } => {
            out.push_str("        /* static priority: most urgent enabled task first */\n");
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| priorities.get(i).copied().unwrap_or(u32::MAX));
            for i in order {
                let m = &net.cfsms()[i];
                let _ = writeln!(
                    out,
                    "        if (polis_enabled({i})) {{ polis_running = {i}; {}_react(&{}_st); polis_commit({i}); continue; }}",
                    m.name(),
                    m.name()
                );
            }
        }
    }
    out.push_str("        polis_idle();\n    }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polis_cfsm::Cfsm;

    fn net() -> Network {
        let mut b = Cfsm::builder("a");
        b.input_pure("in");
        b.output_pure("mid");
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present("in").emit("mid").done();
        let a = b.build().unwrap();
        let mut b = Cfsm::builder("b");
        b.input_pure("mid");
        b.output_pure("out");
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present("mid").emit("out").done();
        let bb = b.build().unwrap();
        Network::new("pair", vec![a, bb]).unwrap()
    }

    #[test]
    fn round_robin_skeleton() {
        let c = emit_rtos_c(&net(), &RtosConfig::default());
        assert!(c.contains("round-robin"));
        assert!(c.contains("a_react(&a_st)"));
        assert!(c.contains("b_react(&b_st)"));
        assert!(c.contains("polis_isr_in"));
        assert!(c.contains("POLIS_NUM_TASKS 2"));
    }

    #[test]
    fn priority_order_and_polling() {
        let mut config = RtosConfig {
            policy: SchedulingPolicy::StaticPriority {
                priorities: vec![5, 1],
            },
            ..RtosConfig::default()
        };
        config
            .delivery
            .insert("in".to_owned(), DeliveryMode::Polled { period: 100 });
        let c = emit_rtos_c(&net(), &config);
        // Task b (priority 1) must be dispatched before task a.
        let pos_b = c.find("b_react(&b_st)").unwrap();
        let pos_a = c.find("a_react(&a_st)").unwrap();
        assert!(pos_b < pos_a);
        assert!(c.contains("polis_poll_in"));
        assert!(c.contains("every 100 cycles"));
    }
}
