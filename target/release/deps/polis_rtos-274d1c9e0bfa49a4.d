/root/repo/target/release/deps/polis_rtos-274d1c9e0bfa49a4.d: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/release/deps/libpolis_rtos-274d1c9e0bfa49a4.rlib: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

/root/repo/target/release/deps/libpolis_rtos-274d1c9e0bfa49a4.rmeta: crates/rtos/src/lib.rs crates/rtos/src/gen_c.rs crates/rtos/src/sched.rs crates/rtos/src/sim.rs

crates/rtos/src/lib.rs:
crates/rtos/src/gen_c.rs:
crates/rtos/src/sched.rs:
crates/rtos/src/sim.rs:
