/root/repo/target/debug/deps/shock_absorber-3a0424f103f40582.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/debug/deps/libshock_absorber-3a0424f103f40582.rmeta: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
