/root/repo/target/debug/deps/schedulability-05ddd9cd93c74465.d: crates/bench/src/bin/schedulability.rs

/root/repo/target/debug/deps/libschedulability-05ddd9cd93c74465.rmeta: crates/bench/src/bin/schedulability.rs

crates/bench/src/bin/schedulability.rs:
