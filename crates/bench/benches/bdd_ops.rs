//! Criterion micro-benchmarks for the BDD substrate: apply operations,
//! characteristic-function construction, and constrained sifting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use polis_bdd::reorder::SiftConfig;
use polis_bdd::{Bdd, NodeRef, Var};
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::random::{random_cfsm, RandomSpec};
use polis_core::workloads;

/// Builds the n-queens-ish interleaved pair function used in the sifting
/// literature: OR of AND pairs under a deliberately bad order.
fn bad_pairs(bdd: &mut Bdd, pairs: usize) -> NodeRef {
    let mut vars: Vec<Var> = Vec::new();
    for i in 0..pairs {
        vars.push(bdd.new_var(format!("a{i}")));
    }
    for i in 0..pairs {
        vars.push(bdd.new_var(format!("b{i}")));
    }
    let mut f = NodeRef::FALSE;
    for i in 0..pairs {
        let a = bdd.var(vars[i]);
        let b = bdd.var(vars[pairs + i]);
        let t = bdd.and(a, b);
        f = bdd.or(f, t);
    }
    f
}

fn bench_apply(c: &mut Criterion) {
    c.bench_function("bdd/build_pairs_8", |b| {
        b.iter(|| {
            let mut bdd = Bdd::new();
            bad_pairs(&mut bdd, 8)
        })
    });
}

fn bench_sift(c: &mut Criterion) {
    c.bench_function("bdd/sift_pairs_8", |b| {
        b.iter_batched(
            || {
                let mut bdd = Bdd::new();
                let f = bad_pairs(&mut bdd, 8);
                (bdd, f)
            },
            |(mut bdd, f)| bdd.sift(&[f], &SiftConfig::to_convergence()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_chi(c: &mut Criterion) {
    let net = workloads::dashboard();
    let fuel = net.cfsms()[net.machine_index("fuel").unwrap()].clone();
    c.bench_function("chi/build_fuel", |b| {
        b.iter(|| ReactiveFn::build(&fuel))
    });
    let spec = RandomSpec {
        states: 4,
        transitions: 12,
        ..RandomSpec::default()
    };
    let m = random_cfsm("bench", &spec, 11);
    c.bench_function("chi/build_random_12t", |b| b.iter(|| ReactiveFn::build(&m)));
    c.bench_function("chi/sift_random_12t", |b| {
        b.iter_batched(
            || ReactiveFn::build(&m),
            |mut rf| rf.sift(OrderScheme::OutputsAfterSupport),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_apply, bench_sift, bench_chi);
criterion_main!(benches);
