//! Boolean conditions over reactive-function atoms.
//!
//! Used by the ITE-chain form (Section III-B3c) and by collapsed TEST nodes
//! (Section III-B3d), where one vertex computes a function of several
//! variables.

use std::fmt;

/// A boolean combination of runtime-evaluable atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// A constant.
    Const(bool),
    /// Presence flag of an input event.
    Present(usize),
    /// A data test.
    Test(usize),
    /// One bit of the control state (bit 0 = MSB of `width` bits).
    CtrlBit {
        /// Bit position.
        bit: usize,
        /// Encoding width.
        width: usize,
    },
    /// Negation.
    Not(Box<Cond>),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// `!self`, with constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        match self {
            Cond::Const(b) => Cond::Const(!b),
            Cond::Not(inner) => *inner,
            other => Cond::Not(Box::new(other)),
        }
    }

    /// `self && other`, with constant folding.
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::Const(false), _) | (_, Cond::Const(false)) => Cond::Const(false),
            (Cond::Const(true), x) | (x, Cond::Const(true)) => x,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self || other`, with constant folding.
    pub fn or(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::Const(true), _) | (_, Cond::Const(true)) => Cond::Const(true),
            (Cond::Const(false), x) | (x, Cond::Const(false)) => x,
            (a, b) => Cond::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `if sel { self } else { other }`, with folding (the paper's
    /// `ITE(x, y, z)` combinator).
    pub fn ite(sel: Cond, t: Cond, e: Cond) -> Cond {
        match (t, e) {
            (Cond::Const(true), Cond::Const(false)) => sel,
            (Cond::Const(false), Cond::Const(true)) => sel.not(),
            (t, e) if t == e => t,
            (Cond::Const(true), e) => sel.or(e),
            (Cond::Const(false), e) => sel.not().and(e),
            (t, Cond::Const(true)) => sel.not().or(t),
            (t, Cond::Const(false)) => sel.and(t),
            (t, e) => sel.clone().and(t).or(sel.not().and(e)),
        }
    }

    /// Evaluates against atom oracles.
    pub fn eval(
        &self,
        present: &mut impl FnMut(usize) -> bool,
        test: &mut impl FnMut(usize) -> bool,
        ctrl: u64,
    ) -> bool {
        match self {
            Cond::Const(b) => *b,
            Cond::Present(i) => present(*i),
            Cond::Test(i) => test(*i),
            Cond::CtrlBit { bit, width } => (ctrl >> (width - 1 - bit)) & 1 == 1,
            Cond::Not(a) => !a.eval(present, test, ctrl),
            Cond::And(a, b) => a.eval(present, test, ctrl) && b.eval(present, test, ctrl),
            Cond::Or(a, b) => a.eval(present, test, ctrl) || b.eval(present, test, ctrl),
        }
    }

    /// Number of atom occurrences (a size measure for cost estimation).
    pub fn atom_count(&self) -> usize {
        match self {
            Cond::Const(_) => 0,
            Cond::Present(_) | Cond::Test(_) | Cond::CtrlBit { .. } => 1,
            Cond::Not(a) => a.atom_count(),
            Cond::And(a, b) | Cond::Or(a, b) => a.atom_count() + b.atom_count(),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Const(b) => write!(f, "{}", u8::from(*b)),
            Cond::Present(i) => write!(f, "present(in{i})"),
            Cond::Test(i) => write!(f, "test{i}"),
            Cond::CtrlBit { bit, .. } => write!(f, "ctrl.{bit}"),
            Cond::Not(a) => write!(f, "!{a}"),
            Cond::And(a, b) => write!(f, "({a} & {b})"),
            Cond::Or(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_with(c: &Cond, presents: &[bool], tests: &[bool], ctrl: u64) -> bool {
        c.eval(&mut |i| presents[i], &mut |i| tests[i], ctrl)
    }

    #[test]
    fn folding_rules() {
        let p = Cond::Present(0);
        assert_eq!(p.clone().and(Cond::Const(true)), p);
        assert_eq!(p.clone().and(Cond::Const(false)), Cond::Const(false));
        assert_eq!(p.clone().or(Cond::Const(false)), p);
        assert_eq!(p.clone().or(Cond::Const(true)), Cond::Const(true));
        assert_eq!(p.clone().not().not(), p);
    }

    #[test]
    fn ite_special_cases() {
        let s = Cond::Present(0);
        let t = Cond::Test(1);
        assert_eq!(
            Cond::ite(s.clone(), Cond::Const(true), Cond::Const(false)),
            s
        );
        assert_eq!(
            Cond::ite(s.clone(), Cond::Const(false), Cond::Const(true)),
            s.clone().not()
        );
        assert_eq!(Cond::ite(s.clone(), t.clone(), t.clone()), t);
    }

    #[test]
    fn evaluation() {
        let c = Cond::Present(0)
            .and(Cond::Test(0).not())
            .or(Cond::CtrlBit { bit: 0, width: 2 });
        // present, test false, ctrl=00 -> true via left arm
        assert!(eval_with(&c, &[true], &[false], 0b00));
        // absent, test false, ctrl=10 -> true via MSB
        assert!(eval_with(&c, &[false], &[false], 0b10));
        // absent, ctrl=01 -> false (bit 0 is the MSB)
        assert!(!eval_with(&c, &[false], &[false], 0b01));
    }

    #[test]
    fn atom_count_counts_occurrences() {
        let c = Cond::Present(0).and(Cond::Present(0)).or(Cond::Test(3));
        assert_eq!(c.atom_count(), 3);
        assert_eq!(Cond::Const(true).atom_count(), 0);
    }
}
