/root/repo/target/debug/deps/polis_lang-68eba21c1eba3137.d: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

/root/repo/target/debug/deps/polis_lang-68eba21c1eba3137: crates/lang/src/lib.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/printer.rs

crates/lang/src/lib.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/printer.rs:
