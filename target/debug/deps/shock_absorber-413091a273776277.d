/root/repo/target/debug/deps/shock_absorber-413091a273776277.d: crates/bench/src/bin/shock_absorber.rs

/root/repo/target/debug/deps/shock_absorber-413091a273776277: crates/bench/src/bin/shock_absorber.rs

crates/bench/src/bin/shock_absorber.rs:
