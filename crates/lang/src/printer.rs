//! Pretty-printing CFSMs back into the specification language.
//!
//! [`emit_source`] is the inverse of [`crate::parse_module`] up to test
//! naming and formatting: parsing the emitted text yields a behaviourally
//! identical machine. Useful for persisting programmatically-built or
//! composed machines, and round-trip tested in `polis-core`.

use polis_cfsm::{value_var_name, Action, Cfsm, Guard, Network};
use polis_expr::{BinOp, Expr, UnOp, Value};
use std::fmt::Write as _;

/// Renders a machine as specification-language source.
pub fn emit_source(m: &Cfsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {} {{", m.name());
    for s in m.inputs() {
        match s.value_type() {
            Some(ty) => {
                let _ = writeln!(out, "    input {} : {};", s.name(), ty);
            }
            None => {
                let _ = writeln!(out, "    input {};", s.name());
            }
        }
    }
    for s in m.outputs() {
        match s.value_type() {
            Some(ty) => {
                let _ = writeln!(out, "    output {} : {};", s.name(), ty);
            }
            None => {
                let _ = writeln!(out, "    output {};", s.name());
            }
        }
    }
    for v in m.state_vars() {
        let init = match v.init {
            Value::Int(i) => i,
            Value::Bool(b) => i64::from(b),
        };
        let _ = writeln!(out, "    var {} : {} := {};", v.name, v.ty, init);
    }
    let _ = writeln!(out, "    state {};", m.states().join(", "));
    for t in m.transitions() {
        let _ = write!(
            out,
            "    from {} to {} when {}",
            m.states()[t.from],
            m.states()[t.to],
            guard_source(m, &t.guard)
        );
        if t.actions.is_empty() {
            let _ = writeln!(out, ";");
        } else {
            let _ = write!(out, " do {{ ");
            for &ai in &t.actions {
                match &m.actions()[ai] {
                    Action::Emit {
                        signal,
                        value: None,
                    } => {
                        let _ = write!(out, "emit {}; ", m.outputs()[*signal].name());
                    }
                    Action::Emit {
                        signal,
                        value: Some(e),
                    } => {
                        let _ = write!(
                            out,
                            "emit {}({}); ",
                            m.outputs()[*signal].name(),
                            expr_source(m, e)
                        );
                    }
                    Action::Assign { var, value } => {
                        let _ = write!(
                            out,
                            "{} := {}; ",
                            m.state_vars()[*var].name,
                            expr_source(m, value)
                        );
                    }
                }
            }
            let _ = writeln!(out, "}}");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every machine of a network.
pub fn emit_network_source(net: &Network) -> String {
    net.cfsms()
        .iter()
        .map(emit_source)
        .collect::<Vec<_>>()
        .join("\n")
}

fn guard_source(m: &Cfsm, g: &Guard) -> String {
    match g {
        Guard::True => "true".to_owned(),
        Guard::False => "false".to_owned(),
        Guard::Present(i) => m.inputs()[*i].name().to_owned(),
        Guard::Test(i) => format!("[{}]", expr_source(m, &m.tests()[*i].expr)),
        Guard::Not(x) => format!("!{}", guard_atom_source(m, x)),
        Guard::And(a, b) => format!("({} && {})", guard_source(m, a), guard_source(m, b)),
        Guard::Or(a, b) => format!("({} || {})", guard_source(m, a), guard_source(m, b)),
    }
}

fn guard_atom_source(m: &Cfsm, g: &Guard) -> String {
    match g {
        Guard::Present(_) | Guard::Test(_) | Guard::True | Guard::False | Guard::Not(_) => {
            guard_source(m, g)
        }
        _ => format!("({})", guard_source(m, g)),
    }
}

/// Renders an expression in the language's (C-like) syntax, mapping event
/// value variables back to the `?signal` notation.
fn expr_source(m: &Cfsm, e: &Expr) -> String {
    match e {
        Expr::Const(Value::Int(v)) => {
            if *v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::Const(Value::Bool(b)) => u8::from(*b).to_string(),
        Expr::Var(name) => {
            for sig in m.inputs() {
                if sig.is_valued() && value_var_name(sig.name()) == *name {
                    return format!("?{}", sig.name());
                }
            }
            name.clone()
        }
        Expr::Unary(UnOp::Neg, a) => format!("(0 - {})", expr_source(m, a)),
        Expr::Unary(UnOp::Not, a) => format!("({} == 0)", expr_source(m, a)),
        Expr::Binary(op, a, b) => {
            let (x, y) = (expr_source(m, a), expr_source(m, b));
            match op {
                BinOp::Min => format!("min({x}, {y})"),
                BinOp::Max => format!("max({x}, {y})"),
                BinOp::And | BinOp::Or | BinOp::Xor => {
                    // Logical connectives have no expression syntax in the
                    // language; they only occur in guards.
                    unreachable!("logical operator inside a data expression")
                }
                other => format!("({x} {} {y})", other.c_symbol()),
            }
        }
        Expr::Ite(..) => unreachable!("ITE never appears in specification expressions"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const SIMPLE: &str = r#"
        module simple {
            input c : u8;
            output y;
            var a : u8 := 0;
            state awaiting;
            from awaiting to awaiting when c && [a == ?c] do { a := 0; emit y; }
            from awaiting to awaiting when c && ![a == ?c] do { a := a + 1; }
        }
    "#;

    #[test]
    fn emitted_source_reparses() {
        let m = parse_module(SIMPLE).unwrap();
        let src = emit_source(&m);
        let m2 = parse_module(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(m2.name(), m.name());
        assert_eq!(m2.inputs().len(), m.inputs().len());
        assert_eq!(m2.outputs().len(), m.outputs().len());
        assert_eq!(m2.states(), m.states());
        assert_eq!(m2.num_transitions(), m.num_transitions());
        assert_eq!(m2.tests().len(), m.tests().len());
    }

    #[test]
    fn emitted_source_mentions_value_notation() {
        let m = parse_module(SIMPLE).unwrap();
        let src = emit_source(&m);
        assert!(src.contains("?c"), "{src}");
        assert!(src.contains("var a : u8 := 0;"), "{src}");
    }

    #[test]
    fn negative_initializers_and_literals_survive() {
        let src = r#"
            module neg {
                input go;
                output o : i8;
                var d : i8 := -3;
                state s;
                from s to s when go do { emit o(d - 10); d := 0 - d; }
            }
        "#;
        let m = parse_module(src).unwrap();
        let emitted = emit_source(&m);
        let m2 = parse_module(&emitted).unwrap_or_else(|e| panic!("{e}\n{emitted}"));
        assert_eq!(m2.state_vars()[0].init, Value::Int(-3));
    }
}
