/root/repo/target/debug/deps/raw_programs-415350ea84a39995.d: crates/vm/tests/raw_programs.rs Cargo.toml

/root/repo/target/debug/deps/libraw_programs-415350ea84a39995.rmeta: crates/vm/tests/raw_programs.rs Cargo.toml

crates/vm/tests/raw_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
