/root/repo/target/debug/deps/sched_prop-7ce669f11873793f.d: crates/rtos/tests/sched_prop.rs

/root/repo/target/debug/deps/sched_prop-7ce669f11873793f: crates/rtos/tests/sched_prop.rs

crates/rtos/tests/sched_prop.rs:
