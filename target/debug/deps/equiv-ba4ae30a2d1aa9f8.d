/root/repo/target/debug/deps/equiv-ba4ae30a2d1aa9f8.d: crates/vm/tests/equiv.rs

/root/repo/target/debug/deps/libequiv-ba4ae30a2d1aa9f8.rmeta: crates/vm/tests/equiv.rs

crates/vm/tests/equiv.rs:
