/root/repo/target/release/deps/polis-62a630f8e26ac5a2.d: src/lib.rs

/root/repo/target/release/deps/libpolis-62a630f8e26ac5a2.rlib: src/lib.rs

/root/repo/target/release/deps/libpolis-62a630f8e26ac5a2.rmeta: src/lib.rs

src/lib.rs:
