//! The software graph (s-graph) intermediate representation and its
//! synthesis from CFSM characteristic functions.
//!
//! An s-graph (Balarin et al., Definition 1) is a DAG with one BEGIN source,
//! one END sink, two-or-more-way TEST vertices, and single-successor ASSIGN
//! vertices. It is the paper's intermediate form between the CFSM transition
//! function and C code: simple enough that every vertex corresponds
//! one-to-one to a C statement (so cost estimation is a graph traversal,
//! Section III-C), yet expressive enough to encode the BDD of the reactive
//! function directly (Theorem 1).
//!
//! * [`build`] — the paper's `build` procedure: structural translation of
//!   the characteristic-function BDD into an s-graph (Section III-B2);
//! * [`ite_chain`] — the TEST-free "outputs before support" form used by
//!   the Esterel v5 Boolean-circuit style (Section III-B3c);
//! * [`collapse`] — the experimental TEST-node collapsing optimization
//!   (Section III-B3d);
//! * [`SGraph::evaluate`] — the `evaluate` procedure of Definition 2,
//!   used both as the reference executable semantics and by the RTOS
//!   co-simulator;
//! * [`execute`] — convenience wrapper running a full CFSM reaction
//!   through an s-graph (evaluating tests lazily, executing actions).
//!
//! # Examples
//!
//! ```
//! use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
//! use polis_expr::{Expr, Type, Value};
//! use polis_sgraph::build;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Cfsm::builder("simple");
//! b.input_valued("c", Type::uint(8));
//! b.output_pure("y");
//! b.state_var("a", Type::uint(8), Value::Int(0));
//! let s0 = b.ctrl_state("awaiting");
//! let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
//! b.transition(s0, s0).when_present("c").when_test(eq)
//!     .assign("a", Expr::int(0)).emit("y").done();
//! b.transition(s0, s0).when_present("c").when_not_test(eq)
//!     .assign("a", Expr::var("a").add(Expr::int(1))).done();
//! let simple = b.build()?;
//!
//! let mut rf = ReactiveFn::build(&simple);
//! rf.sift(OrderScheme::OutputsAfterSupport);
//! let sg = build(&rf)?;
//! assert!(sg.num_tests() >= 2); // present_c and a == ?c
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub use analysis::BufferPolicy;
mod builder;
mod chain;
mod collapse;
mod cond;
mod eval;
mod graph;

pub use builder::{build, BuildError};
pub use chain::ite_chain;
pub use collapse::{collapse, CollapseOptions};
pub use cond::Cond;
pub use eval::{execute, input_values, EvalError, EvalOutcome, SgEnv};
pub use graph::{AssignLabel, ComputedTarget, NodeId, SGraph, SGraphStats, SNode, TestLabel};
