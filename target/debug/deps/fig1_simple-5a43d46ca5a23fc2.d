/root/repo/target/debug/deps/fig1_simple-5a43d46ca5a23fc2.d: tests/fig1_simple.rs

/root/repo/target/debug/deps/fig1_simple-5a43d46ca5a23fc2: tests/fig1_simple.rs

tests/fig1_simple.rs:
