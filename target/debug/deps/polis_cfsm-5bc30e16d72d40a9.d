/root/repo/target/debug/deps/polis_cfsm-5bc30e16d72d40a9.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/debug/deps/libpolis_cfsm-5bc30e16d72d40a9.rlib: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

/root/repo/target/debug/deps/libpolis_cfsm-5bc30e16d72d40a9.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
