/root/repo/target/debug/deps/polis_codegen-5796a876a8a3ea11.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/debug/deps/polis_codegen-5796a876a8a3ea11: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
