//! **Step 4 (Section I-H / IV-A)** — scheduling the CFSMs against timing
//! constraints with classical real-time theory.
//!
//! "Our synthesis procedure, in addition, provides execution time estimates
//! that can be used either by a user or by an automatic RTOS generator to
//! devise a scheduling policy that is guaranteed to meet the timing
//! constraints." We feed the estimator's worst-case reaction cycles into
//! Liu–Layland utilization and exact response-time analysis, sweeping the
//! sensor event rates, and cross-check a verdict by co-simulation.

use polis_bench::synthesize_all;
use polis_core::{workloads, SynthesisOptions};
use polis_rtos::{
    rate_monotonic, rate_monotonic_nonpreemptive, RtosConfig, SchedulingPolicy, Simulator,
    Stimulus, TaskModel,
};

fn main() {
    let net = workloads::dashboard();
    let opts = SynthesisOptions::default();
    let (results, _) = synthesize_all(&net, &opts);
    let overhead = RtosConfig::default().overhead;
    // Per reaction the RTOS charges dispatch, and each triggering event
    // costs one ISR; fold both into the task WCETs.
    let dispatch = overhead.dispatch + overhead.isr;

    // Triggering rates: pulse counters see fast sensor events, conversion
    // stages run once per timebase window.
    let base_period = |name: &str, pulse: u64, window: u64| -> u64 {
        match name {
            "frc" | "rpc" => pulse,
            _ => window,
        }
    };

    println!("Step 4: rate-monotonic schedulability of the dashboard (Mcu8)\n");
    println!(
        "| {:>12} | {:>12} | {:>6} | {:>8} | {:>12} |",
        "pulse period", "window", "util", "LL test", "RTA verdict"
    );
    println!("|{}|", "-".repeat(64));
    let mut verdicts = Vec::new();
    for (pulse, window) in [
        (4_000u64, 40_000u64),
        (1_000, 10_000),
        (400, 4_000),
        (250, 2_500),
    ] {
        let tasks: Vec<TaskModel> = net
            .cfsms()
            .iter()
            .zip(&results)
            .map(|(m, r)| {
                TaskModel::new(
                    m.name(),
                    r.measured.max_cycles + dispatch,
                    base_period(m.name(), pulse, window),
                )
            })
            .collect();
        let pre = rate_monotonic(&tasks);
        let a = rate_monotonic_nonpreemptive(&tasks);
        println!(
            "| {:>12} | {:>12} | {:>5.1}% | {:>8} | {:>12} |",
            pulse,
            window,
            a.utilization * 100.0,
            if pre.passes_utilization_test {
                "pass"
            } else {
                "beyond"
            },
            if a.schedulable {
                "SCHEDULABLE"
            } else {
                "MISSES"
            }
        );
        verdicts.push((pulse, window, a));
    }

    // Cross-check the fastest *schedulable* configuration by simulation:
    // every pulse must be processed without one-place-buffer overwrites.
    let (pulse, window, _) = verdicts
        .iter()
        .filter(|(_, _, a)| a.schedulable)
        .min_by_key(|(p, _, _)| *p)
        .expect("some configuration is schedulable");
    let mut stim = Vec::new();
    for i in 0..200u64 {
        stim.push(Stimulus::pure(i * pulse, "wheel_pulse"));
        stim.push(Stimulus::pure(i * pulse + pulse / 2, "eng_pulse"));
    }
    for i in 1..=20u64 {
        stim.push(Stimulus::pure(i * window, "timebase"));
    }
    // Simulate under the analysis' assumptions: rate-monotonic static
    // priorities (shortest period = most urgent), reactions atomic.
    let mut periods: Vec<(usize, u64)> = net
        .cfsms()
        .iter()
        .enumerate()
        .map(|(i, m)| (i, base_period(m.name(), *pulse, *window)))
        .collect();
    periods.sort_by_key(|&(_, p)| p);
    let mut priorities = vec![0u32; net.cfsms().len()];
    for (rank, &(i, _)) in periods.iter().enumerate() {
        priorities[i] = rank as u32;
    }
    let config = RtosConfig {
        policy: SchedulingPolicy::StaticPriority { priorities },
        ..RtosConfig::default()
    };
    let mut sim = Simulator::build(&net, config);
    sim.run(&stim);
    let lost: u64 = sim.stats().overwritten.iter().sum();
    println!(
        "\nsimulation at pulse={pulse}, window={window}: {} reactions, {} events lost",
        sim.stats().reactions.iter().sum::<u64>(),
        lost
    );
    println!(
        "shape check (RTA-schedulable rate loses no events in simulation): {}",
        if lost == 0 { "HOLDS" } else { "VIOLATED" }
    );
}
