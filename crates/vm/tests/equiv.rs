//! Cross-layer properties: compiled object code behaves exactly like the
//! s-graph it was compiled from (and hence like the CFSM, by Theorem 1),
//! and its dynamic cycle counts always fall inside the static min/max
//! bounds of the object-code analyzer.

use polis_cfsm::{Cfsm, OrderScheme, ReactiveFn};
use polis_expr::{Env, Expr, MapEnv, Type, Value};
use polis_sgraph::{build, ite_chain, SGraph};
use polis_vm::{
    analyze, assemble, compile, run_reaction, BufferPolicy, CollectingHost, Profile, VmMemory,
    VmProgram,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct TransitionSpec {
    from: usize,
    to: usize,
    need_a: u8,
    need_b: u8,
    need_t: u8,
    emit_x: bool,
    emit_v: bool,
    bump: bool,
    reset: bool,
}

#[derive(Debug, Clone)]
struct MachineSpec {
    num_states: usize,
    transitions: Vec<TransitionSpec>,
}

fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    (1..=3usize)
        .prop_flat_map(|num_states| {
            (
                Just(num_states),
                proptest::collection::vec(
                    (
                        0..num_states,
                        0..num_states,
                        0..3u8,
                        0..3u8,
                        0..3u8,
                        any::<bool>(),
                        any::<bool>(),
                        any::<bool>(),
                        any::<bool>(),
                    )
                        .prop_map(
                            |(from, to, need_a, need_b, need_t, emit_x, emit_v, bump, reset)| {
                                TransitionSpec {
                                    from,
                                    to,
                                    need_a,
                                    need_b,
                                    need_t,
                                    emit_x,
                                    emit_v,
                                    bump,
                                    reset,
                                }
                            },
                        ),
                    1..=5,
                ),
            )
        })
        .prop_map(|(num_states, transitions)| MachineSpec {
            num_states,
            transitions,
        })
}

fn instantiate(spec: &MachineSpec) -> Cfsm {
    let mut b = Cfsm::builder("random");
    b.input_pure("a");
    b.input_valued("b", Type::uint(4));
    b.output_pure("x");
    b.output_valued("v", Type::uint(4));
    b.state_var("n", Type::uint(4), Value::Int(0));
    let states: Vec<_> = (0..spec.num_states)
        .map(|i| b.ctrl_state(format!("s{i}")))
        .collect();
    let t = b.test("n_lt_b", Expr::var("n").lt(Expr::var("b_value")));
    for ts in &spec.transitions {
        let mut tb = b.transition(states[ts.from], states[ts.to]);
        tb = match ts.need_a {
            1 => tb.when_present("a"),
            2 => tb.when_absent("a"),
            _ => tb,
        };
        tb = match ts.need_b {
            1 => tb.when_present("b"),
            2 => tb.when_absent("b"),
            _ => tb,
        };
        tb = match ts.need_t {
            1 => tb.when_test(t),
            2 => tb.when_not_test(t),
            _ => tb,
        };
        if ts.emit_x {
            tb = tb.emit("x");
        }
        if ts.emit_v {
            tb = tb.emit_value("v", Expr::var("n").add(Expr::var("b_value")));
        }
        if ts.reset {
            tb = tb.assign("n", Expr::int(0));
        } else if ts.bump {
            tb = tb.assign("n", Expr::var("n").add(Expr::int(1)));
        }
        tb.done();
    }
    b.build().unwrap()
}

/// Drive the compiled routine and the reference CFSM in lock-step.
fn check_machine(
    m: &Cfsm,
    g: &SGraph,
    policy: BufferPolicy,
    profile: Profile,
    stimulus: &[(bool, bool, i64)],
) {
    let prog: VmProgram = compile(m, g, policy);
    let obj = assemble(&prog, profile);
    let bounds = analyze(&prog, &obj);
    let mut mem = VmMemory::new(&prog);
    let mut st = m.initial_state();

    for &(pa, pb, bval) in stimulus {
        // Reference reaction.
        let mut present = BTreeSet::new();
        if pa {
            present.insert("a".to_string());
        }
        if pb {
            present.insert("b".to_string());
        }
        let mut vals = MapEnv::new();
        vals.set("b_value", Value::Int(bval));
        let want = m.react(&present, &vals, &st).unwrap();

        // Compiled reaction. The RTOS would write the buffered value of b
        // whenever the event is (re-)emitted; model a one-place buffer by
        // always updating it.
        if let Some(slot) = prog.input_value_slot(1) {
            mem.set(slot, bval);
        }
        let mut host = CollectingHost::new(vec![pa, pb]);
        let stats = run_reaction(&prog, &obj, &mut mem, &mut host).unwrap();

        // Equivalence: fired, emissions (as sets), state variables, ctrl.
        assert_eq!(host.consumed, want.fired, "fired mismatch");
        let mut got: Vec<(usize, Option<i64>)> = host.emissions.clone();
        let mut exp: Vec<(usize, Option<i64>)> = want
            .emissions
            .iter()
            .map(|e| {
                let oi = m.output_index(&e.signal).unwrap();
                (oi, e.value.map(|v| v.as_int().unwrap()))
            })
            .collect();
        got.sort();
        exp.sort();
        assert_eq!(got, exp, "emission mismatch");
        let n_slot = prog.state_slot("n").unwrap();
        assert_eq!(
            mem.get(n_slot),
            want.next.data.get("n").unwrap().as_int().unwrap(),
            "state variable mismatch"
        );
        if let Some(cs) = prog.ctrl_slot() {
            assert_eq!(mem.get(cs) as usize, want.next.ctrl, "ctrl mismatch");
        }

        // Static bounds contain the dynamic cost.
        assert!(
            (bounds.min_cycles..=bounds.max_cycles).contains(&stats.cycles),
            "cycles {} outside [{}, {}]",
            stats.cycles,
            bounds.min_cycles,
            bounds.max_cycles
        );

        st = want.next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_code_matches_reference_mcu8(
        spec in arb_machine(),
        stim in proptest::collection::vec((any::<bool>(), any::<bool>(), 0..16i64), 1..10),
    ) {
        let m = instantiate(&spec);
        let mut rf = ReactiveFn::build(&m);
        rf.sift(OrderScheme::OutputsAfterSupport);
        let g = build(&rf).unwrap();
        check_machine(&m, &g, BufferPolicy::All, Profile::Mcu8, &stim);
    }

    #[test]
    fn compiled_code_matches_reference_risc32(
        spec in arb_machine(),
        stim in proptest::collection::vec((any::<bool>(), any::<bool>(), 0..16i64), 1..10),
    ) {
        let m = instantiate(&spec);
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        check_machine(&m, &g, BufferPolicy::All, Profile::Risc32, &stim);
    }

    #[test]
    fn minimal_buffering_is_still_correct(
        spec in arb_machine(),
        stim in proptest::collection::vec((any::<bool>(), any::<bool>(), 0..16i64), 1..10),
    ) {
        let m = instantiate(&spec);
        let mut rf = ReactiveFn::build(&m);
        rf.sift(OrderScheme::OutputsAfterSupport);
        let g = build(&rf).unwrap();
        check_machine(&m, &g, BufferPolicy::Minimal, Profile::Mcu8, &stim);
    }

    #[test]
    fn ite_chain_compiles_and_matches(
        spec in arb_machine(),
        stim in proptest::collection::vec((any::<bool>(), any::<bool>(), 0..16i64), 1..8),
    ) {
        let m = instantiate(&spec);
        let mut rf = ReactiveFn::build(&m);
        let g = ite_chain(&mut rf);
        check_machine(&m, &g, BufferPolicy::All, Profile::Mcu8, &stim);
    }

    #[test]
    fn minimal_buffering_never_uses_more_ram(spec in arb_machine()) {
        let m = instantiate(&spec);
        let rf = ReactiveFn::build(&m);
        let g = build(&rf).unwrap();
        let all = compile(&m, &g, BufferPolicy::All);
        let min = compile(&m, &g, BufferPolicy::Minimal);
        prop_assert!(min.ram_bytes() <= all.ram_bytes());
        prop_assert!(min.num_local_copies() <= all.num_local_copies());
    }
}
