//! The single-CFSM model: builder, validation, and reference semantics.

use crate::signal::{value_var_name, Signal};
use polis_expr::{Env, EvalExprError, Expr, MapEnv, Type, Value};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A state (data) variable of a CFSM, carried across reactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVar {
    /// Variable name; referenced from test and action expressions.
    pub name: String,
    /// The variable's finite-domain type.
    pub ty: Type,
    /// Reset value.
    pub init: Value,
}

/// A named boolean predicate over state variables and input event values.
///
/// Tests are the data-path inputs of the reactive function (Section III-B1:
/// "a set of tests on input and state variables").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestDef {
    /// Name used for the s-graph variable and in generated C comments.
    pub name: String,
    /// The predicate; must evaluate to a boolean.
    pub expr: Expr,
}

/// Index of a test within its CFSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TestId(pub usize);

/// Index of a control state within its CFSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(pub usize);

/// An output action: an event emission or a state-variable assignment
/// (Section III-B1: "a set of actions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Emit an output event, with a value expression for valued signals.
    Emit {
        /// Index into the CFSM's output signal list.
        signal: usize,
        /// The emitted value (`None` for pure signals), evaluated against
        /// the pre-reaction state and input values.
        value: Option<Expr>,
    },
    /// Assign `value` to state variable `var`; the right-hand side reads
    /// pre-reaction values (all state is conceptually copied on entry,
    /// Section V-B).
    Assign {
        /// Index into the CFSM's state-variable list.
        var: usize,
        /// The assigned expression.
        value: Expr,
    },
}

/// The trigger condition of a transition: a boolean combination of event
/// presence atoms and data tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Guard {
    /// Always true.
    #[default]
    True,
    /// Always false (arises from constant folding during composition).
    False,
    /// Input event at the given input index is present in the snapshot.
    Present(usize),
    /// The test with the given index holds.
    Test(usize),
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// `self && other`.
    pub fn and(self, other: Guard) -> Guard {
        Guard::And(Box::new(self), Box::new(other))
    }

    /// `self || other`.
    pub fn or(self, other: Guard) -> Guard {
        Guard::Or(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Guard {
        Guard::Not(Box::new(self))
    }

    /// Evaluates the guard against a presence snapshot and precomputed test
    /// values.
    pub fn eval(&self, present: &[bool], tests: &[bool]) -> bool {
        match self {
            Guard::True => true,
            Guard::False => false,
            Guard::Present(i) => present[*i],
            Guard::Test(i) => tests[*i],
            Guard::Not(g) => !g.eval(present, tests),
            Guard::And(a, b) => a.eval(present, tests) && b.eval(present, tests),
            Guard::Or(a, b) => a.eval(present, tests) || b.eval(present, tests),
        }
    }

    /// Evaluates the guard with a fallible, lazily-queried test oracle —
    /// the paper's "tests are evaluated as they are needed" semantics.
    ///
    /// # Errors
    ///
    /// Propagates the first oracle error encountered.
    pub fn try_eval<E>(
        &self,
        present: &[bool],
        test: &mut impl FnMut(usize) -> Result<bool, E>,
    ) -> Result<bool, E> {
        Ok(match self {
            Guard::True => true,
            Guard::False => false,
            Guard::Present(i) => present[*i],
            Guard::Test(i) => test(*i)?,
            Guard::Not(g) => !g.try_eval(present, test)?,
            Guard::And(a, b) => a.try_eval(present, test)? && b.try_eval(present, test)?,
            Guard::Or(a, b) => a.try_eval(present, test)? || b.try_eval(present, test)?,
        })
    }

    /// Calls `f` on every `Present` atom and `g` on every `Test` atom.
    pub fn visit_atoms(&self, f: &mut impl FnMut(usize), g: &mut impl FnMut(usize)) {
        match self {
            Guard::True | Guard::False => {}
            Guard::Present(i) => f(*i),
            Guard::Test(i) => g(*i),
            Guard::Not(x) => x.visit_atoms(f, g),
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.visit_atoms(f, g);
                b.visit_atoms(f, g);
            }
        }
    }
}

/// One transition of a CFSM. Transitions from the same control state are
/// prioritized in declaration order (earlier wins on overlap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source control state.
    pub from: usize,
    /// Destination control state.
    pub to: usize,
    /// Trigger condition.
    pub guard: Guard,
    /// Indices into the CFSM action list, executed when the transition
    /// fires.
    pub actions: Vec<usize>,
}

/// A codesign finite state machine.
///
/// Construct with [`Cfsm::builder`]; see the crate-level example. The struct
/// is immutable after [`CfsmBuilder::build`] validates it.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfsm {
    name: String,
    inputs: Vec<Signal>,
    outputs: Vec<Signal>,
    state_vars: Vec<StateVar>,
    states: Vec<String>,
    init_state: usize,
    tests: Vec<TestDef>,
    actions: Vec<Action>,
    transitions: Vec<Transition>,
}

impl Cfsm {
    /// Starts building a CFSM with the given name.
    pub fn builder(name: impl Into<String>) -> CfsmBuilder {
        CfsmBuilder {
            cfsm: Cfsm {
                name: name.into(),
                inputs: Vec::new(),
                outputs: Vec::new(),
                state_vars: Vec::new(),
                states: Vec::new(),
                init_state: 0,
                tests: Vec::new(),
                actions: Vec::new(),
                transitions: Vec::new(),
            },
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Input event signals.
    pub fn inputs(&self) -> &[Signal] {
        &self.inputs
    }
    /// Output event signals.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }
    /// State (data) variables.
    pub fn state_vars(&self) -> &[StateVar] {
        &self.state_vars
    }
    /// Control state names.
    pub fn states(&self) -> &[String] {
        &self.states
    }
    /// The reset control state.
    pub fn init_state(&self) -> usize {
        self.init_state
    }
    /// Data-path tests.
    pub fn tests(&self) -> &[TestDef] {
        &self.tests
    }
    /// Output actions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
    /// Transitions, in priority order within each source state.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the input signal named `sig`.
    pub fn input_index(&self, sig: &str) -> Option<usize> {
        self.inputs.iter().position(|s| s.name() == sig)
    }

    /// Index of the output signal named `sig`.
    pub fn output_index(&self, sig: &str) -> Option<usize> {
        self.outputs.iter().position(|s| s.name() == sig)
    }

    /// Index of the state variable named `var`.
    pub fn state_var_index(&self, var: &str) -> Option<usize> {
        self.state_vars.iter().position(|v| v.name == var)
    }

    /// The reset state: initial control state and initial data values.
    pub fn initial_state(&self) -> CfsmState {
        let mut data = MapEnv::new();
        for v in &self.state_vars {
            data.set(v.name.clone(), v.init.coerce(v.ty));
        }
        CfsmState {
            ctrl: self.init_state,
            data,
        }
    }

    /// A short human-readable label for action `a` (used in diagnostics and
    /// generated-code comments).
    pub fn action_label(&self, a: usize) -> String {
        match &self.actions[a] {
            Action::Emit {
                signal,
                value: None,
            } => {
                format!("emit_{}", self.outputs[*signal].name())
            }
            Action::Emit {
                signal,
                value: Some(_),
            } => format!("emit_{}_v", self.outputs[*signal].name()),
            Action::Assign { var, .. } => format!("set_{}_{a}", self.state_vars[*var].name),
        }
    }

    /// Executes one reaction: the **reference semantics** against which the
    /// synthesized s-graph and object code are verified (Theorem 1).
    ///
    /// `present` lists present input signals by name; `input_values` binds
    /// `"{sig}_value"` for every *valued* input (present or not — absent
    /// signals keep their last buffered value, per the one-place-buffer
    /// semantics).
    ///
    /// All action expressions read the *pre-reaction* state and input
    /// values; writes are committed together at the end.
    ///
    /// # Errors
    ///
    /// Returns [`ReactError`] if an expression evaluation fails (unbound
    /// variable or kind mismatch) — this indicates an invalid environment,
    /// since `build` checks expression supports statically.
    pub fn react(
        &self,
        present: &BTreeSet<String>,
        input_values: &MapEnv,
        state: &CfsmState,
    ) -> Result<Reaction, ReactError> {
        let present_flags: Vec<bool> = self
            .inputs
            .iter()
            .map(|s| present.contains(s.name()))
            .collect();

        // Pre-reaction environment: state data then input values.
        let env = LayeredEnv {
            base: &state.data,
            over: input_values,
        };
        // Tests are evaluated lazily and memoized, exactly once per
        // reaction ("tests are evaluated as they are needed",
        // Section III-B1) — so a test reading the value of an event that
        // has never been delivered is only an error if a guard actually
        // demands it.
        let mut test_cache: Vec<Option<bool>> = vec![None; self.tests.len()];
        let mut eval_test = |i: usize| -> Result<bool, ReactError> {
            if let Some(v) = test_cache[i] {
                return Ok(v);
            }
            let t = &self.tests[i];
            let v = t
                .expr
                .eval(&env)
                .map_err(|e| ReactError::Eval {
                    context: format!("test `{}`", t.name),
                    source: e,
                })?
                .as_bool()
                .map_err(|e| ReactError::Eval {
                    context: format!("test `{}`", t.name),
                    source: EvalExprError::Type(e),
                })?;
            test_cache[i] = Some(v);
            Ok(v)
        };

        let mut fired = None;
        for (ti, t) in self.transitions.iter().enumerate() {
            if t.from != state.ctrl {
                continue;
            }
            if t.guard.try_eval(&present_flags, &mut eval_test)? {
                fired = Some((ti, t));
                break;
            }
        }

        let Some((ti, tr)) = fired else {
            return Ok(Reaction {
                fired: false,
                transition: None,
                emissions: Vec::new(),
                next: state.clone(),
            });
        };

        let mut emissions = Vec::new();
        let mut next_data = state.data.clone();
        for &ai in &tr.actions {
            match &self.actions[ai] {
                Action::Emit { signal, value } => {
                    let sig = &self.outputs[*signal];
                    let value = match value {
                        None => None,
                        Some(e) => {
                            let v = e.eval(&env).map_err(|err| ReactError::Eval {
                                context: format!("emission of `{}`", sig.name()),
                                source: err,
                            })?;
                            Some(v.coerce(sig.value_type().expect("valued signal")))
                        }
                    };
                    emissions.push(Emission {
                        signal: sig.name().to_owned(),
                        value,
                    });
                }
                Action::Assign { var, value } => {
                    let sv = &self.state_vars[*var];
                    let v = value.eval(&env).map_err(|err| ReactError::Eval {
                        context: format!("assignment to `{}`", sv.name),
                        source: err,
                    })?;
                    next_data.set(sv.name.clone(), v.coerce(sv.ty));
                }
            }
        }

        Ok(Reaction {
            fired: true,
            transition: Some(ti),
            emissions,
            next: CfsmState {
                ctrl: tr.to,
                data: next_data,
            },
        })
    }
}

/// A two-layer environment: input values shadow state data (names are
/// disjoint after validation, so shadowing never actually occurs).
struct LayeredEnv<'a> {
    base: &'a MapEnv,
    over: &'a MapEnv,
}

impl Env for LayeredEnv<'_> {
    fn get(&self, name: &str) -> Option<Value> {
        self.over.get(name).or_else(|| self.base.get(name))
    }
}

/// The persistent state of one CFSM: control state plus data variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfsmState {
    /// Current control state (index into [`Cfsm::states`]).
    pub ctrl: usize,
    /// Current data-variable values.
    pub data: MapEnv,
}

/// An emitted event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emission {
    /// Signal name.
    pub signal: String,
    /// Carried value (`None` for pure signals).
    pub value: Option<Value>,
}

/// The result of one reaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// `true` if a transition fired; when `false`, input events must be
    /// preserved for the next execution (Section IV-D).
    pub fired: bool,
    /// Index of the fired transition, if any.
    pub transition: Option<usize>,
    /// Events emitted by the reaction, in action order.
    pub emissions: Vec<Emission>,
    /// Post-reaction state.
    pub next: CfsmState,
}

/// Failure during [`Cfsm::react`].
#[derive(Debug)]
pub enum ReactError {
    /// An expression could not be evaluated.
    Eval {
        /// What was being evaluated.
        context: String,
        /// The underlying expression error.
        source: EvalExprError,
    },
}

impl fmt::Display for ReactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReactError::Eval { context, source } => {
                write!(f, "evaluating {context}: {source}")
            }
        }
    }
}

impl Error for ReactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReactError::Eval { source, .. } => Some(source),
        }
    }
}

/// Validation failure while building a [`Cfsm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfsmError {
    /// A name is declared twice (or collides with a derived name).
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// An expression references an unknown variable.
    UnknownVar {
        /// Where the reference occurs.
        context: String,
        /// The unknown name.
        name: String,
    },
    /// A reference to an undeclared signal, test, state, or variable.
    UnknownRef {
        /// Where the reference occurs.
        context: String,
        /// The unknown name.
        name: String,
    },
    /// A transition performs two actions on the same target.
    ConflictingActions {
        /// Transition index.
        transition: usize,
        /// Target (signal or variable) name.
        target: String,
    },
    /// A valued emission on a pure signal, or a pure emission on a valued
    /// signal.
    EmissionArity {
        /// The signal name.
        signal: String,
    },
    /// The machine has no control states.
    NoStates,
}

impl fmt::Display for CfsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfsmError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            CfsmError::UnknownVar { context, name } => {
                write!(f, "{context} references unknown variable `{name}`")
            }
            CfsmError::UnknownRef { context, name } => {
                write!(f, "{context} references unknown `{name}`")
            }
            CfsmError::ConflictingActions { transition, target } => write!(
                f,
                "transition {transition} performs two actions on `{target}`"
            ),
            CfsmError::EmissionArity { signal } => write!(
                f,
                "emission arity does not match declaration of signal `{signal}`"
            ),
            CfsmError::NoStates => write!(f, "machine has no control states"),
        }
    }
}

impl Error for CfsmError {}

/// Incremental constructor for [`Cfsm`]; see the crate-level example.
#[derive(Debug)]
pub struct CfsmBuilder {
    cfsm: Cfsm,
}

impl CfsmBuilder {
    /// Declares a pure input event.
    pub fn input_pure(&mut self, name: impl Into<String>) -> &mut Self {
        self.cfsm.inputs.push(Signal::pure(name));
        self
    }

    /// Declares a valued input event.
    pub fn input_valued(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.cfsm.inputs.push(Signal::valued(name, ty));
        self
    }

    /// Declares a pure output event.
    pub fn output_pure(&mut self, name: impl Into<String>) -> &mut Self {
        self.cfsm.outputs.push(Signal::pure(name));
        self
    }

    /// Declares a valued output event.
    pub fn output_valued(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.cfsm.outputs.push(Signal::valued(name, ty));
        self
    }

    /// Declares a state variable with a reset value.
    pub fn state_var(&mut self, name: impl Into<String>, ty: Type, init: Value) -> &mut Self {
        self.cfsm.state_vars.push(StateVar {
            name: name.into(),
            ty,
            init,
        });
        self
    }

    /// Declares a control state; the first declared state is the reset
    /// state.
    pub fn ctrl_state(&mut self, name: impl Into<String>) -> StateId {
        self.cfsm.states.push(name.into());
        StateId(self.cfsm.states.len() - 1)
    }

    /// Declares a data test; returns its id for use in guards.
    pub fn test(&mut self, name: impl Into<String>, expr: Expr) -> TestId {
        self.cfsm.tests.push(TestDef {
            name: name.into(),
            expr,
        });
        TestId(self.cfsm.tests.len() - 1)
    }

    /// Starts a transition from `from` to `to`; finish with
    /// [`TransitionBuilder::done`].
    pub fn transition(&mut self, from: StateId, to: StateId) -> TransitionBuilder<'_> {
        TransitionBuilder {
            builder: self,
            from: from.0,
            to: to.0,
            guard: Guard::True,
            actions: Vec::new(),
        }
    }

    fn intern_action(&mut self, action: Action) -> usize {
        if let Some(i) = self.cfsm.actions.iter().position(|a| *a == action) {
            i
        } else {
            self.cfsm.actions.push(action);
            self.cfsm.actions.len() - 1
        }
    }

    /// Validates and returns the machine.
    ///
    /// # Errors
    ///
    /// Returns a [`CfsmError`] describing the first validation failure; see
    /// the enum for the checked properties.
    pub fn build(self) -> Result<Cfsm, CfsmError> {
        let m = self.cfsm;
        if m.states.is_empty() {
            return Err(CfsmError::NoStates);
        }
        // Name uniqueness across everything expressions can reference.
        let mut names = BTreeSet::new();
        let mut check = |n: String| {
            if names.insert(n.clone()) {
                Ok(())
            } else {
                Err(CfsmError::DuplicateName { name: n })
            }
        };
        for s in m.inputs.iter().chain(&m.outputs) {
            check(s.name().to_owned())?;
            if s.is_valued() {
                check(value_var_name(s.name()))?;
            }
        }
        for v in &m.state_vars {
            check(v.name.clone())?;
        }
        for s in &m.states {
            check(format!("state::{s}"))?;
        }
        for t in &m.tests {
            check(format!("test::{}", t.name))?;
        }

        // Expressions may reference state vars and input value vars.
        let expr_scope: BTreeSet<String> = m
            .state_vars
            .iter()
            .map(|v| v.name.clone())
            .chain(
                m.inputs
                    .iter()
                    .filter(|s| s.is_valued())
                    .map(|s| value_var_name(s.name())),
            )
            .collect();
        let check_expr = |context: &str, e: &Expr| -> Result<(), CfsmError> {
            for name in e.support() {
                if !expr_scope.contains(&name) {
                    return Err(CfsmError::UnknownVar {
                        context: context.to_owned(),
                        name,
                    });
                }
            }
            Ok(())
        };
        for t in &m.tests {
            check_expr(&format!("test `{}`", t.name), &t.expr)?;
        }
        for (i, a) in m.actions.iter().enumerate() {
            match a {
                Action::Emit { signal, value } => {
                    let sig = m.outputs.get(*signal).ok_or(CfsmError::UnknownRef {
                        context: format!("action {i}"),
                        name: format!("output #{signal}"),
                    })?;
                    if sig.is_valued() != value.is_some() {
                        return Err(CfsmError::EmissionArity {
                            signal: sig.name().to_owned(),
                        });
                    }
                    if let Some(e) = value {
                        check_expr(&format!("emission of `{}`", sig.name()), e)?;
                    }
                }
                Action::Assign { var, value } => {
                    let sv = m.state_vars.get(*var).ok_or(CfsmError::UnknownRef {
                        context: format!("action {i}"),
                        name: format!("state var #{var}"),
                    })?;
                    check_expr(&format!("assignment to `{}`", sv.name), value)?;
                }
            }
        }
        for (ti, t) in m.transitions.iter().enumerate() {
            let ctx = format!("transition {ti}");
            if t.from >= m.states.len() || t.to >= m.states.len() {
                return Err(CfsmError::UnknownRef {
                    context: ctx,
                    name: "control state".to_owned(),
                });
            }
            let mut bad_inputs = Vec::new();
            let mut bad_tests = Vec::new();
            t.guard.visit_atoms(
                &mut |i| {
                    if i >= m.inputs.len() {
                        bad_inputs.push(i);
                    }
                },
                &mut |i| {
                    if i >= m.tests.len() {
                        bad_tests.push(i);
                    }
                },
            );
            let bad_atom = bad_inputs
                .first()
                .map(|i| format!("input #{i}"))
                .or_else(|| bad_tests.first().map(|i| format!("test #{i}")));
            if let Some(name) = bad_atom {
                return Err(CfsmError::UnknownRef { context: ctx, name });
            }
            // No two actions on the same target.
            let mut targets = BTreeSet::new();
            for &ai in &t.actions {
                if ai >= m.actions.len() {
                    return Err(CfsmError::UnknownRef {
                        context: ctx,
                        name: format!("action #{ai}"),
                    });
                }
                let target = match &m.actions[ai] {
                    Action::Emit { signal, .. } => format!("sig:{}", m.outputs[*signal].name()),
                    Action::Assign { var, .. } => format!("var:{}", m.state_vars[*var].name),
                };
                if !targets.insert(target.clone()) {
                    return Err(CfsmError::ConflictingActions {
                        transition: ti,
                        target,
                    });
                }
            }
        }
        Ok(m)
    }
}

/// In-progress transition; created by [`CfsmBuilder::transition`].
#[derive(Debug)]
pub struct TransitionBuilder<'a> {
    builder: &'a mut CfsmBuilder,
    from: usize,
    to: usize,
    guard: Guard,
    actions: Vec<usize>,
}

impl TransitionBuilder<'_> {
    fn add_guard(&mut self, g: Guard) {
        let prev = std::mem::replace(&mut self.guard, Guard::True);
        self.guard = if prev == Guard::True { g } else { prev.and(g) };
    }

    /// Requires input `sig` to be present.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a declared input (builder misuse).
    pub fn when_present(mut self, sig: &str) -> Self {
        let i = self
            .builder
            .cfsm
            .input_index(sig)
            .unwrap_or_else(|| panic!("unknown input `{sig}`"));
        self.add_guard(Guard::Present(i));
        self
    }

    /// Requires input `sig` to be absent.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a declared input.
    pub fn when_absent(mut self, sig: &str) -> Self {
        let i = self
            .builder
            .cfsm
            .input_index(sig)
            .unwrap_or_else(|| panic!("unknown input `{sig}`"));
        self.add_guard(Guard::Present(i).not());
        self
    }

    /// Requires test `t` to hold.
    pub fn when_test(mut self, t: TestId) -> Self {
        self.add_guard(Guard::Test(t.0));
        self
    }

    /// Requires test `t` to fail.
    pub fn when_not_test(mut self, t: TestId) -> Self {
        self.add_guard(Guard::Test(t.0).not());
        self
    }

    /// Conjoins an arbitrary guard.
    pub fn when(mut self, g: Guard) -> Self {
        self.add_guard(g);
        self
    }

    /// Adds a pure emission of output `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a declared output.
    pub fn emit(mut self, sig: &str) -> Self {
        let signal = self
            .builder
            .cfsm
            .output_index(sig)
            .unwrap_or_else(|| panic!("unknown output `{sig}`"));
        let a = self.builder.intern_action(Action::Emit {
            signal,
            value: None,
        });
        self.actions.push(a);
        self
    }

    /// Adds a valued emission of output `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a declared output.
    pub fn emit_value(mut self, sig: &str, value: Expr) -> Self {
        let signal = self
            .builder
            .cfsm
            .output_index(sig)
            .unwrap_or_else(|| panic!("unknown output `{sig}`"));
        let a = self.builder.intern_action(Action::Emit {
            signal,
            value: Some(value),
        });
        self.actions.push(a);
        self
    }

    /// Adds an assignment to state variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a declared state variable.
    pub fn assign(mut self, var: &str, value: Expr) -> Self {
        let vi = self
            .builder
            .cfsm
            .state_var_index(var)
            .unwrap_or_else(|| panic!("unknown state variable `{var}`"));
        let a = self
            .builder
            .intern_action(Action::Assign { var: vi, value });
        self.actions.push(a);
        self
    }

    /// Commits the transition to the builder.
    pub fn done(self) {
        self.builder.cfsm.transitions.push(Transition {
            from: self.from,
            to: self.to,
            guard: self.guard,
            actions: self.actions,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 `simple` module.
    pub(crate) fn simple() -> Cfsm {
        let mut b = Cfsm::builder("simple");
        b.input_valued("c", Type::uint(8));
        b.output_pure("y");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s0 = b.ctrl_state("awaiting");
        let eq = b.test("a_eq_c", Expr::var("a").eq(Expr::var("c_value")));
        b.transition(s0, s0)
            .when_present("c")
            .when_test(eq)
            .assign("a", Expr::int(0))
            .emit("y")
            .done();
        b.transition(s0, s0)
            .when_present("c")
            .when_not_test(eq)
            .assign("a", Expr::var("a").add(Expr::int(1)))
            .done();
        b.build().expect("simple is valid")
    }

    fn present(sigs: &[&str]) -> BTreeSet<String> {
        sigs.iter().map(|s| (*s).to_string()).collect()
    }

    fn values(pairs: &[(&str, i64)]) -> MapEnv {
        pairs
            .iter()
            .map(|(s, v)| (value_var_name(s), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn simple_counts_until_match() {
        let m = simple();
        let mut st = m.initial_state();
        // a starts 0; c=3 arrives repeatedly: a counts 1, 2, 3, then on
        // a==3 emits y and resets.
        for step in 0..3 {
            let r = m
                .react(&present(&["c"]), &values(&[("c", 3)]), &st)
                .unwrap();
            assert!(r.fired);
            assert!(r.emissions.is_empty(), "step {step}");
            st = r.next;
        }
        assert_eq!(st.data.get("a"), Some(Value::Int(3)));
        let r = m
            .react(&present(&["c"]), &values(&[("c", 3)]), &st)
            .unwrap();
        assert_eq!(r.emissions.len(), 1);
        assert_eq!(r.emissions[0].signal, "y");
        assert_eq!(r.next.data.get("a"), Some(Value::Int(0)));
    }

    #[test]
    fn no_input_means_no_firing_and_state_preserved() {
        let m = simple();
        let st = m.initial_state();
        let r = m.react(&present(&[]), &values(&[("c", 3)]), &st).unwrap();
        assert!(!r.fired);
        assert_eq!(r.transition, None);
        assert_eq!(r.next, st);
    }

    #[test]
    fn priority_resolves_overlap() {
        // Two transitions with overlapping guards: first declared wins.
        let mut b = Cfsm::builder("prio");
        b.input_pure("e");
        b.output_pure("first");
        b.output_pure("second");
        let s = b.ctrl_state("s");
        b.transition(s, s).when_present("e").emit("first").done();
        b.transition(s, s).when_present("e").emit("second").done();
        let m = b.build().unwrap();
        let r = m
            .react(&present(&["e"]), &MapEnv::new(), &m.initial_state())
            .unwrap();
        assert_eq!(r.emissions[0].signal, "first");
        assert_eq!(r.transition, Some(0));
    }

    #[test]
    fn assignment_reads_pre_reaction_state() {
        // Swap two variables in one transition: both reads see old values.
        let mut b = Cfsm::builder("swap");
        b.input_pure("go");
        b.state_var("x", Type::uint(8), Value::Int(1));
        b.state_var("y", Type::uint(8), Value::Int(2));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .assign("x", Expr::var("y"))
            .assign("y", Expr::var("x"))
            .done();
        let m = b.build().unwrap();
        let r = m
            .react(&present(&["go"]), &MapEnv::new(), &m.initial_state())
            .unwrap();
        assert_eq!(r.next.data.get("x"), Some(Value::Int(2)));
        assert_eq!(r.next.data.get("y"), Some(Value::Int(1)));
    }

    #[test]
    fn assignment_wraps_to_variable_width() {
        let mut b = Cfsm::builder("wrap");
        b.input_pure("go");
        b.state_var("n", Type::uint(4), Value::Int(15));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .assign("n", Expr::var("n").add(Expr::int(1)))
            .done();
        let m = b.build().unwrap();
        let r = m
            .react(&present(&["go"]), &MapEnv::new(), &m.initial_state())
            .unwrap();
        assert_eq!(r.next.data.get("n"), Some(Value::Int(0)));
    }

    #[test]
    fn valued_emission_coerces_to_signal_type() {
        let mut b = Cfsm::builder("emitter");
        b.input_pure("go");
        b.output_valued("out", Type::uint(4));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .emit_value("out", Expr::int(100))
            .done();
        let m = b.build().unwrap();
        let r = m
            .react(&present(&["go"]), &MapEnv::new(), &m.initial_state())
            .unwrap();
        assert_eq!(r.emissions[0].value, Some(Value::Int(4))); // 100 mod 16
    }

    #[test]
    fn guard_absent_atom() {
        let mut b = Cfsm::builder("abs");
        b.input_pure("a");
        b.input_pure("b");
        b.output_pure("only_a");
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("a")
            .when_absent("b")
            .emit("only_a")
            .done();
        let m = b.build().unwrap();
        let st = m.initial_state();
        let r = m.react(&present(&["a"]), &MapEnv::new(), &st).unwrap();
        assert!(r.fired);
        let r = m.react(&present(&["a", "b"]), &MapEnv::new(), &st).unwrap();
        assert!(!r.fired);
    }

    #[test]
    fn validation_duplicate_name() {
        let mut b = Cfsm::builder("dup");
        b.input_pure("x");
        b.output_pure("x");
        b.ctrl_state("s");
        assert!(matches!(
            b.build(),
            Err(CfsmError::DuplicateName { name }) if name == "x"
        ));
    }

    #[test]
    fn validation_unknown_expr_var() {
        let mut b = Cfsm::builder("bad");
        b.input_pure("go");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        b.test("t", Expr::var("nonexistent").eq(Expr::int(0)));
        b.transition(s, s).when_present("go").done();
        assert!(matches!(
            b.build(),
            Err(CfsmError::UnknownVar { name, .. }) if name == "nonexistent"
        ));
    }

    #[test]
    fn validation_conflicting_actions() {
        let mut b = Cfsm::builder("conflict");
        b.input_pure("go");
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        b.transition(s, s)
            .when_present("go")
            .assign("a", Expr::int(1))
            .assign("a", Expr::int(2))
            .done();
        assert!(matches!(
            b.build(),
            Err(CfsmError::ConflictingActions { .. })
        ));
    }

    #[test]
    fn validation_no_states() {
        let b = Cfsm::builder("empty");
        assert!(matches!(b.build(), Err(CfsmError::NoStates)));
    }

    #[test]
    fn value_var_allowed_in_expressions_only_for_valued_inputs() {
        let mut b = Cfsm::builder("scope");
        b.input_pure("p"); // pure: p_value is NOT in scope
        b.state_var("a", Type::uint(8), Value::Int(0));
        let s = b.ctrl_state("s");
        b.test("t", Expr::var("p_value").eq(Expr::int(0)));
        b.transition(s, s).when_present("p").done();
        assert!(matches!(b.build(), Err(CfsmError::UnknownVar { .. })));
    }

    #[test]
    fn action_interning_dedupes() {
        let m = simple();
        // Both transitions assign to `a` with different exprs + one emit:
        // 3 distinct actions.
        assert_eq!(m.actions().len(), 3);
    }
}
