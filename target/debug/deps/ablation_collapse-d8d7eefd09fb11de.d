/root/repo/target/debug/deps/ablation_collapse-d8d7eefd09fb11de.d: crates/bench/src/bin/ablation_collapse.rs Cargo.toml

/root/repo/target/debug/deps/libablation_collapse-d8d7eefd09fb11de.rmeta: crates/bench/src/bin/ablation_collapse.rs Cargo.toml

crates/bench/src/bin/ablation_collapse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
