//! Benchmarks for the execution substrates: single-reaction
//! virtual-machine runs and RTOS co-simulation throughput.
//! Uses the self-contained harness in `polis_bench::bench`.

use polis_bench::{bench, dashboard_stimulus};
use polis_cfsm::{OrderScheme, ReactiveFn};
use polis_core::workloads;
use polis_rtos::{RtosConfig, Simulator};
use polis_sgraph::build;
use polis_vm::{assemble, compile, run_reaction, BufferPolicy, CollectingHost, Profile, VmMemory};

fn main() {
    let net = workloads::dashboard();
    let m = net.cfsms()[net.machine_index("fuel").unwrap()].clone();
    let mut rf = ReactiveFn::build(&m);
    rf.sift(OrderScheme::OutputsAfterSupport);
    let g = build(&rf).expect("builds");
    let prog = compile(&m, &g, BufferPolicy::All);
    let obj = assemble(&prog, Profile::Mcu8);
    bench("vm/react_fuel", || {
        let mut mem = VmMemory::new(&prog);
        let mut host = CollectingHost::new(vec![true]);
        run_reaction(&prog, &obj, &mut mem, &mut host).expect("runs")
    });

    let stim = dashboard_stimulus(400);
    bench("rtos/simulate_dashboard_400", || {
        let mut sim = Simulator::build(&net, RtosConfig::default());
        sim.run(&stim);
        sim.stats().total_cycles
    });
}
