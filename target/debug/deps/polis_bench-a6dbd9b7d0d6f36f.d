/root/repo/target/debug/deps/polis_bench-a6dbd9b7d0d6f36f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpolis_bench-a6dbd9b7d0d6f36f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
