/root/repo/target/release/deps/polis_vm-ed2a2f6a7f04a558.d: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/release/deps/libpolis_vm-ed2a2f6a7f04a558.rlib: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

/root/repo/target/release/deps/libpolis_vm-ed2a2f6a7f04a558.rmeta: crates/vm/src/lib.rs crates/vm/src/analyze.rs crates/vm/src/compile.rs crates/vm/src/exec.rs crates/vm/src/inst.rs crates/vm/src/profile.rs

crates/vm/src/lib.rs:
crates/vm/src/analyze.rs:
crates/vm/src/compile.rs:
crates/vm/src/exec.rs:
crates/vm/src/inst.rs:
crates/vm/src/profile.rs:
