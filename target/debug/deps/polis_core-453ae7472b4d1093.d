/root/repo/target/debug/deps/polis_core-453ae7472b4d1093.d: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

/root/repo/target/debug/deps/polis_core-453ae7472b4d1093: crates/core/src/lib.rs crates/core/src/pipeline.rs crates/core/src/random.rs crates/core/src/trace.rs crates/core/src/workloads.rs

crates/core/src/lib.rs:
crates/core/src/pipeline.rs:
crates/core/src/random.rs:
crates/core/src/trace.rs:
crates/core/src/workloads.rs:
