/root/repo/target/debug/deps/polis_cfsm-3dbe940b36c619b5.d: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs Cargo.toml

/root/repo/target/debug/deps/libpolis_cfsm-3dbe940b36c619b5.rmeta: crates/cfsm/src/lib.rs crates/cfsm/src/chi.rs crates/cfsm/src/compose.rs crates/cfsm/src/machine.rs crates/cfsm/src/network.rs crates/cfsm/src/signal.rs Cargo.toml

crates/cfsm/src/lib.rs:
crates/cfsm/src/chi.rs:
crates/cfsm/src/compose.rs:
crates/cfsm/src/machine.rs:
crates/cfsm/src/network.rs:
crates/cfsm/src/signal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
