/root/repo/target/release/deps/polis_codegen-10175ec2aa39f95e.d: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/release/deps/libpolis_codegen-10175ec2aa39f95e.rlib: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

/root/repo/target/release/deps/libpolis_codegen-10175ec2aa39f95e.rmeta: crates/codegen/src/lib.rs crates/codegen/src/c_emit.rs crates/codegen/src/two_level.rs

crates/codegen/src/lib.rs:
crates/codegen/src/c_emit.rs:
crates/codegen/src/two_level.rs:
